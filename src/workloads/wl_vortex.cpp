// vortex-analog: an in-memory record store — hash-table inserts with chained
// collision lists over a bump allocator, followed by a mixed hit/miss lookup
// stream. Mirrors vortex's object-database behaviour: hashing, pointer
// chasing, and branchy comparison loops.
#include <sstream>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace restore::workloads {

namespace {

constexpr std::size_t kInserts = 320;
constexpr std::size_t kLookups = 960;

std::vector<u64> make_keys() {
  Rng rng(0x0DB0);
  std::vector<u64> keys;
  keys.reserve(kInserts);
  for (std::size_t i = 0; i < kInserts; ++i) {
    keys.push_back(rng.next() | 1);  // nonzero
  }
  return keys;
}

std::vector<u64> make_probes(const std::vector<u64>& keys) {
  Rng rng(0x10CC);
  std::vector<u64> probes;
  probes.reserve(kLookups);
  for (std::size_t i = 0; i < kLookups; ++i) {
    if (rng.below(2)) {
      probes.push_back(keys[rng.below(keys.size())]);  // hit
    } else {
      probes.push_back(rng.next() | 1);  // almost surely a miss
    }
  }
  return probes;
}

}  // namespace

std::string wl_vortex_source() {
  const auto keys = make_keys();
  const auto probes = make_probes(keys);
  std::ostringstream out;
  // Record layout (24 bytes): +0 key, +8 value, +16 next pointer.
  // Bucket array: 128 pointers. hash(key) = ((key * 2654435761) >> 16) & 127.
  out << R"(# vortex-analog: hashed record store, insert + lookup
main:
  # Insert phase.
  la s0, keys
  li s1, )" << kInserts << R"(
  la s2, heap         # bump allocator
  li s3, 0            # record ordinal -> value = key ^ ordinal
insert_loop:
  beqz s1, lookups
  ld t0, 0(s0)        # key
  addi s0, s0, 8
  addi s1, s1, -1
  # hash
  li t1, 2654435761
  mul t2, t0, t1
  srli t2, t2, 16
  andi t2, t2, 127
  la t3, buckets
  slli t4, t2, 3
  add t3, t3, t4      # &buckets[h]
  # fill record
  sd t0, 0(s2)        # key
  xor t5, t0, s3
  sd t5, 8(s2)        # value
  ld t6, 0(t3)        # old head
  sd t6, 16(s2)       # next = old head
  sd s2, 0(t3)        # head = record
  addi s2, s2, 24
  addi s3, s3, 1
  j insert_loop

lookups:
  la s0, probes
  li s1, )" << kLookups << R"(
  li r1, 0            # checksum
  li s4, 0            # miss counter
probe_loop:
  beqz s1, finish
  ld t0, 0(s0)        # probe key
  addi s0, s0, 8
  addi s1, s1, -1
  li t1, 2654435761
  mul t2, t0, t1
  srli t2, t2, 16
  andi t2, t2, 127
  la t3, buckets
  slli t4, t2, 3
  add t3, t3, t4
  ld t5, 0(t3)        # chain head
chain_walk:
  beqz t5, miss
  ld t6, 0(t5)        # record key
  beq t6, t0, hit
  ld t5, 16(t5)       # next
  j chain_walk
hit:
  ld t7, 8(t5)        # value
  slli r1, r1, 1
  add r1, r1, t7
  j probe_loop
miss:
  addi s4, s4, 1
  xori r1, r1, 0x5A5A
  j probe_loop

finish:
  slli t0, s4, 32
  add r1, r1, t0      # fold miss count into the checksum high bits
  j __emit
)";
  out << detail::kChecksumEpilogue;
  out << ".data\n";
  out << ".align 8\n";
  out << "buckets: .space 1024\n";  // 128 * 8
  out << "keys:\n" << detail::emit_words64(keys);
  out << "probes:\n" << detail::emit_words64(probes);
  out << "heap: .space " << (kInserts * 24 + 32) << "\n";
  return out.str();
}

}  // namespace restore::workloads
