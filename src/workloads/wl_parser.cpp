// parser-analog: recursive-descent parsing and evaluation of arithmetic
// expression statements. Mirrors parser's character scanning, deep call
// recursion, and dense data-dependent branching.
#include <sstream>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace restore::workloads {

namespace {

// Generate one random expression with bounded nesting depth.
void gen_expr(Rng& rng, std::string& out, int depth);

void gen_factor(Rng& rng, std::string& out, int depth) {
  const u64 pick = rng.below(10);
  if (depth > 0 && pick < 3) {
    out.push_back('(');
    gen_expr(rng, out, depth - 1);
    out.push_back(')');
  } else if (depth > 0 && pick == 3) {
    out.push_back('-');
    gen_factor(rng, out, depth - 1);
  } else {
    out += std::to_string(1 + rng.below(999));
  }
}

void gen_term(Rng& rng, std::string& out, int depth) {
  gen_factor(rng, out, depth);
  const u64 extra = rng.below(3);
  for (u64 i = 0; i < extra; ++i) {
    out.push_back('*');
    gen_factor(rng, out, depth);
  }
}

void gen_expr(Rng& rng, std::string& out, int depth) {
  gen_term(rng, out, depth);
  const u64 extra = rng.below(4);
  for (u64 i = 0; i < extra; ++i) {
    out.push_back(rng.below(2) ? '+' : '-');
    gen_term(rng, out, depth);
  }
}

std::string make_text(std::size_t statements) {
  Rng rng(0x9A25E2);
  std::string text;
  for (std::size_t i = 0; i < statements; ++i) {
    gen_expr(rng, text, 4);
    text.push_back(';');
  }
  return text;
}

}  // namespace

std::string wl_parser_source() {
  const std::string text = make_text(40);
  std::ostringstream out;
  out << R"(# parser-analog: recursive-descent expression evaluator
main:
  la t0, text
  la t1, cursor
  sd t0, 0(t1)
  li s8, 0            # checksum (s8: rv aliases r1, so r1 is not safe here)

stmt_loop:
  la t1, cursor
  ld t2, 0(t1)
  lbu t3, 0(t2)
  beqz t3, all_done   # NUL terminator
  call parse_expr
  # consume the ';'
  la t1, cursor
  ld t2, 0(t1)
  addi t2, t2, 1
  sd t2, 0(t1)
  # checksum = checksum * 16777619 ^ value
  li t4, 16777619
  mul s8, s8, t4
  xor s8, s8, rv
  j stmt_loop
all_done:
  mv r1, s8
  j __emit

# ---- helpers ----
# peek() -> rv: current character without consuming.
peek:
  la t0, cursor
  ld t1, 0(t0)
  lbu rv, 0(t1)
  ret

# advance(): consume one character.
advance:
  la t0, cursor
  ld t1, 0(t0)
  addi t1, t1, 1
  sd t1, 0(t0)
  ret

# parse_expr() -> rv: term (('+'|'-') term)*
parse_expr:
  addi sp, sp, -16
  sd ra, 0(sp)
  sd s0, 8(sp)
  call parse_term
  mv s0, rv
expr_loop:
  call peek
  seqi t0, rv, 43     # '+'
  bnez t0, expr_add
  seqi t0, rv, 45     # '-'
  bnez t0, expr_sub
  mv rv, s0
  ld ra, 0(sp)
  ld s0, 8(sp)
  addi sp, sp, 16
  ret
expr_add:
  call advance
  call parse_term
  add s0, s0, rv
  j expr_loop
expr_sub:
  call advance
  call parse_term
  sub s0, s0, rv
  j expr_loop

# parse_term() -> rv: factor ('*' factor)*
parse_term:
  addi sp, sp, -16
  sd ra, 0(sp)
  sd s0, 8(sp)
  call parse_factor
  mv s0, rv
term_loop:
  call peek
  seqi t0, rv, 42     # '*'
  beqz t0, term_done
  call advance
  call parse_factor
  mul s0, s0, rv
  j term_loop
term_done:
  mv rv, s0
  ld ra, 0(sp)
  ld s0, 8(sp)
  addi sp, sp, 16
  ret

# parse_factor() -> rv: number | '(' expr ')' | '-' factor
parse_factor:
  addi sp, sp, -16
  sd ra, 0(sp)
  sd s0, 8(sp)
  call peek
  seqi t0, rv, 40     # '('
  bnez t0, factor_paren
  seqi t0, rv, 45     # '-'
  bnez t0, factor_neg
  # number: digits
  li s0, 0
digit_loop:
  call peek
  slti t0, rv, 48     # < '0'
  bnez t0, factor_done
  slti t0, rv, 58     # <= '9'
  beqz t0, factor_done
  addi t1, rv, -48
  li t2, 10
  mul s0, s0, t2
  add s0, s0, t1
  call advance
  j digit_loop
factor_paren:
  call advance        # consume '('
  call parse_expr
  mv s0, rv
  call advance        # consume ')'
  j factor_done
factor_neg:
  call advance        # consume '-'
  call parse_factor
  sub s0, zero, rv
factor_done:
  mv rv, s0
  ld ra, 0(sp)
  ld s0, 8(sp)
  addi sp, sp, 16
  ret
)";
  out << detail::kChecksumEpilogue;
  out << ".data\n";
  out << ".align 8\n";
  out << "cursor: .word64 0\n";
  out << "text: .asciz \"" << text << "\"\n";
  return out.str();
}

}  // namespace restore::workloads
