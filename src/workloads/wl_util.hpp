// Internal helpers for generating workload assembly: deterministic input-data
// blobs emitted as .byte/.word directives, and the shared checksum epilogue.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace restore::workloads::detail {

inline std::string emit_bytes(const std::vector<u8>& data) {
  std::ostringstream out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 16 == 0) out << (i ? "\n" : "") << "  .byte ";
    else out << ", ";
    out << static_cast<unsigned>(data[i]);
  }
  out << "\n";
  return out.str();
}

inline std::string emit_words32(const std::vector<u32>& data) {
  std::ostringstream out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 8 == 0) out << (i ? "\n" : "") << "  .word32 ";
    else out << ", ";
    out << data[i];
  }
  out << "\n";
  return out.str();
}

inline std::string emit_words64(const std::vector<u64>& data) {
  std::ostringstream out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 4 == 0) out << (i ? "\n" : "") << "  .word64 ";
    else out << ", ";
    out << data[i];
  }
  out << "\n";
  return out.str();
}

// Shared epilogue: emits the 8 bytes of the checksum in r1 via OUT, then
// halts. Jump here with the checksum in r1 ("j __emit").
inline constexpr const char* kChecksumEpilogue = R"(
__emit:
  li t0, 8
__emit_loop:
  out r1
  srli r1, r1, 8
  addi t0, t0, -1
  bnez t0, __emit_loop
  halt
)";

}  // namespace restore::workloads::detail
