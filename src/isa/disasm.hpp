// Disassembler — used by traces, the event log, and test diagnostics.
#pragma once

#include <string>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace restore::isa {

std::string disassemble(const DecodedInst& inst);
std::string disassemble(u32 word);

// Human-readable register name (r0..r30, zero).
std::string reg_name(u8 reg);

}  // namespace restore::isa
