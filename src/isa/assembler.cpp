#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/bits.hpp"
#include "isa/instruction.hpp"

namespace restore::isa {

namespace {

struct Statement {
  std::size_t line = 0;
  std::vector<std::string> labels;
  std::string mnemonic;  // lower-case; empty for label-only lines
  std::vector<std::string> operands;
};

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

// Split "a, b, 8(sp)" into operand tokens. Commas inside quotes are kept.
std::vector<std::string> split_operands(std::string_view text, std::size_t line) {
  std::vector<std::string> out;
  std::string current;
  bool in_quote = false;
  for (char c : text) {
    if (c == '"') in_quote = !in_quote;
    if (c == ',' && !in_quote) {
      out.emplace_back(trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quote) throw AsmError(line, "unterminated string literal");
  const auto tail = trim(current);
  if (!tail.empty()) out.emplace_back(tail);
  for (const auto& op : out) {
    if (op.empty()) throw AsmError(line, "empty operand");
  }
  return out;
}

std::vector<Statement> parse_source(std::string_view source) {
  std::vector<Statement> stmts;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const auto nl = source.find('\n', pos);
    std::string_view line =
        source.substr(pos, nl == std::string_view::npos ? source.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
    ++line_no;

    // Strip comments ('#' or ';'), but not inside quotes.
    bool in_quote = false;
    std::size_t cut = line.size();
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') in_quote = !in_quote;
      if (!in_quote && (line[i] == '#' || line[i] == ';')) {
        cut = i;
        break;
      }
    }
    line = trim(line.substr(0, cut));
    if (line.empty()) continue;

    Statement stmt;
    stmt.line = line_no;

    // Leading labels: "name:".
    for (;;) {
      std::size_t i = 0;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      if (i == 0 || i >= line.size() || line[i] != ':') break;
      stmt.labels.emplace_back(line.substr(0, i));
      line = trim(line.substr(i + 1));
    }
    if (!line.empty()) {
      std::size_t i = 0;
      while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      stmt.mnemonic = to_lower(line.substr(0, i));
      stmt.operands = split_operands(trim(line.substr(i)), line_no);
    }
    stmts.push_back(std::move(stmt));
  }
  return stmts;
}

const std::map<std::string, u8, std::less<>>& register_aliases() {
  static const std::map<std::string, u8, std::less<>> table = [] {
    std::map<std::string, u8, std::less<>> t;
    // Two-step concatenation: `"r" + std::to_string(i)` trips GCC 12's
    // -Wrestrict false positive (PR105651) under -Werror.
    auto alias = [](char prefix, u8 i) {
      std::string name(1, prefix);
      name += std::to_string(i);
      return name;
    };
    for (u8 i = 0; i < kNumArchRegs; ++i) t[alias('r', i)] = i;
    t["zero"] = 31;
    t["sp"] = 30;
    t["ra"] = 29;
    t["rv"] = 1;
    for (u8 i = 0; i < 6; ++i) t[alias('a', i)] = static_cast<u8>(2 + i);
    for (u8 i = 0; i < 12; ++i) t[alias('t', i)] = static_cast<u8>(8 + i);
    for (u8 i = 0; i < 9; ++i) t[alias('s', i)] = static_cast<u8>(20 + i);
    return t;
  }();
  return table;
}

std::optional<i64> try_parse_number(std::string_view token) {
  bool negative = false;
  if (!token.empty() && (token.front() == '-' || token.front() == '+')) {
    negative = token.front() == '-';
    token.remove_prefix(1);
  }
  if (token.empty()) return std::nullopt;
  int base = 10;
  if (token.size() > 2 && token[0] == '0' && (token[1] == 'x' || token[1] == 'X')) {
    base = 16;
    token.remove_prefix(2);
  }
  u64 magnitude = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), magnitude, base);
  if (ec != std::errc{} || ptr != token.data() + token.size()) return std::nullopt;
  return negative ? -static_cast<i64>(magnitude) : static_cast<i64>(magnitude);
}

// Mnemonic table for real (non-pseudo) instructions.
const std::map<std::string, Opcode, std::less<>>& opcode_table() {
  static const std::map<std::string, Opcode, std::less<>> table = [] {
    std::map<std::string, Opcode, std::less<>> t;
    for (u8 raw = 0; raw < 64; ++raw) {
      const auto op = static_cast<Opcode>(raw);
      if (format_of(op) != Format::kIllegal) t[std::string(mnemonic(op))] = op;
    }
    return t;
  }();
  return table;
}

class Assembler {
 public:
  Assembler(const AsmOptions& options, std::string name)
      : options_(options), name_(std::move(name)) {}

  Program run(std::string_view source) {
    const auto stmts = parse_source(source);
    // Pass 1: assign addresses to labels.
    pass_ = 1;
    layout(stmts);
    // Pass 2: emit bytes.
    pass_ = 2;
    text_.clear();
    data_.clear();
    layout(stmts);
    return finish();
  }

 private:
  enum class Section { kText, kData };

  void layout(const std::vector<Statement>& stmts) {
    section_ = Section::kText;
    text_cursor_ = options_.text_base;
    data_cursor_ = options_.data_base;
    for (const auto& stmt : stmts) process(stmt);
  }

  u64& cursor() { return section_ == Section::kText ? text_cursor_ : data_cursor_; }
  u64 cursor() const {
    return section_ == Section::kText ? text_cursor_ : data_cursor_;
  }
  std::vector<u8>& bytes() { return section_ == Section::kText ? text_ : data_; }

  void process(const Statement& stmt) {
    line_ = stmt.line;
    for (const auto& label : stmt.labels) define_label(label);
    if (stmt.mnemonic.empty()) return;
    if (stmt.mnemonic.front() == '.') {
      directive(stmt);
    } else {
      instruction(stmt);
    }
  }

  void define_label(const std::string& label) {
    if (pass_ != 1) return;
    if (!labels_.emplace(label, cursor()).second) {
      throw AsmError(line_, "duplicate label '" + label + "'");
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw AsmError(line_, message);
  }

  // ---- operand parsing ----

  u8 reg(const std::string& token) const {
    const auto& table = register_aliases();
    const auto it = table.find(to_lower(token));
    if (it == table.end()) fail("unknown register '" + token + "'");
    return it->second;
  }

  i64 literal(const std::string& token) const {
    if (const auto v = try_parse_number(token)) return *v;
    fail("expected numeric literal, got '" + token + "'");
  }

  // A value that may be a literal or (in pass 2) a label address. In pass 1
  // unknown labels resolve to 0 — only used where the encoding size does not
  // depend on the value.
  i64 value_or_label(const std::string& token) const {
    if (const auto v = try_parse_number(token)) return *v;
    if (pass_ == 1) return 0;
    const auto it = labels_.find(token);
    if (it == labels_.end()) fail("undefined symbol '" + token + "'");
    return static_cast<i64>(it->second);
  }

  // "disp(base)" memory operand.
  std::pair<i64, u8> mem_operand(const std::string& token) const {
    const auto open = token.find('(');
    const auto close = token.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      fail("expected disp(base) operand, got '" + token + "'");
    }
    const auto disp_text = trim(std::string_view(token).substr(0, open));
    const i64 disp = disp_text.empty() ? 0 : literal(std::string(disp_text));
    const u8 base = reg(std::string(
        trim(std::string_view(token).substr(open + 1, close - open - 1))));
    check_imm16_signed(disp);
    return {disp, base};
  }

  void check_imm16_signed(i64 v) const {
    if (v < -(1 << 15) || v >= (1 << 15)) fail("immediate out of signed 16-bit range");
  }
  void check_imm16_logical(i64 v) const {
    if (v < 0 || v > 0xFFFF) fail("logical immediate out of unsigned 16-bit range");
  }

  // ---- emission ----

  void emit_word(u32 word) {
    if (pass_ == 2) {
      auto& out = bytes();
      out.push_back(static_cast<u8>(word));
      out.push_back(static_cast<u8>(word >> 8));
      out.push_back(static_cast<u8>(word >> 16));
      out.push_back(static_cast<u8>(word >> 24));
    }
    cursor() += 4;
  }

  void emit_byte(u8 b) {
    if (pass_ == 2) bytes().push_back(b);
    cursor() += 1;
  }

  // ---- pseudo-instruction expansion ----

  // Load an arbitrary 64-bit constant. The sequence depends only on the value
  // (known in both passes), so sizes stay consistent.
  void emit_li(u8 rd, u64 value) {
    const i64 sv = static_cast<i64>(value);
    if (sv >= -(1 << 15) && sv < (1 << 15)) {
      emit_word(encode_itype(Opcode::kAddi, rd, kZeroReg, sv));
      return;
    }
    if (value <= 0xFFFF) {
      emit_word(encode_itype(Opcode::kOri, rd, kZeroReg, static_cast<i64>(value)));
      return;
    }
    // General shift-or recipe from the topmost nonzero 16-bit chunk down.
    int top = 3;
    while (top > 0 && ((value >> (16 * top)) & 0xFFFF) == 0) --top;
    emit_word(encode_itype(Opcode::kOri, rd, kZeroReg,
                           static_cast<i64>((value >> (16 * top)) & 0xFFFF)));
    for (int chunk = top - 1; chunk >= 0; --chunk) {
      emit_word(encode_itype(Opcode::kSlli, rd, rd, 16));
      const u64 piece = (value >> (16 * chunk)) & 0xFFFF;
      if (piece != 0) {
        emit_word(encode_itype(Opcode::kOri, rd, rd, static_cast<i64>(piece)));
      }
    }
  }

  // Load a label address: fixed three-instruction form so that pass-1 sizing
  // does not depend on the (not yet known) address. Addresses must fit in 32
  // unsigned bits, which the default memory map guarantees.
  void emit_la(u8 rd, const std::string& label) {
    const u64 addr = static_cast<u64>(value_or_label(label));
    if (pass_ == 2 && addr > 0xFFFF'FFFFULL) fail("label address exceeds 32 bits");
    emit_word(encode_itype(Opcode::kOri, rd, kZeroReg,
                           static_cast<i64>((addr >> 16) & 0xFFFF)));
    emit_word(encode_itype(Opcode::kSlli, rd, rd, 16));
    emit_word(encode_itype(Opcode::kOri, rd, rd, static_cast<i64>(addr & 0xFFFF)));
  }

  i64 branch_disp(const std::string& target) const {
    const i64 addr = value_or_label(target);
    return addr - static_cast<i64>(cursor() + 4);
  }

  void emit_branch(Opcode op, u8 rs1, u8 rs2, const std::string& target) {
    const i64 disp = branch_disp(target);
    if (pass_ == 2) {
      if (disp % 4 != 0) fail("branch target not word-aligned");
      const i64 units = disp / 4;
      if (units < -(1 << 15) || units >= (1 << 15)) fail("branch target out of range");
    }
    emit_word(encode_branch(op, rs1, rs2, pass_ == 2 ? disp : 0));
  }

  void emit_jal(u8 rd, const std::string& target) {
    const i64 disp = branch_disp(target);
    if (pass_ == 2) {
      if (disp % 4 != 0) fail("jump target not word-aligned");
      const i64 units = disp / 4;
      if (units < -(1 << 20) || units >= (1 << 20)) fail("jump target out of range");
    }
    emit_word(encode_jal(rd, pass_ == 2 ? disp : 0));
  }

  // ---- statement handlers ----

  void directive(const Statement& stmt) {
    const std::string& d = stmt.mnemonic;
    auto need = [&](std::size_t n) {
      if (stmt.operands.size() != n) fail("directive " + d + " expects " +
                                          std::to_string(n) + " operand(s)");
    };
    if (d == ".text") {
      need(0);
      section_ = Section::kText;
    } else if (d == ".data") {
      need(0);
      section_ = Section::kData;
    } else if (d == ".align") {
      need(1);
      const i64 align = literal(stmt.operands[0]);
      if (align <= 0 || !is_pow2(static_cast<u64>(align))) {
        fail(".align requires a positive power of two");
      }
      while (cursor() % static_cast<u64>(align) != 0) emit_byte(0);
    } else if (d == ".space") {
      need(1);
      const i64 n = literal(stmt.operands[0]);
      if (n < 0) fail(".space requires a non-negative size");
      for (i64 i = 0; i < n; ++i) emit_byte(0);
    } else if (d == ".byte") {
      for (const auto& op : stmt.operands) {
        emit_byte(static_cast<u8>(literal(op)));
      }
    } else if (d == ".word16") {
      for (const auto& op : stmt.operands) {
        const u64 v = static_cast<u64>(literal(op));
        emit_byte(static_cast<u8>(v));
        emit_byte(static_cast<u8>(v >> 8));
      }
    } else if (d == ".word32") {
      for (const auto& op : stmt.operands) {
        const u64 v = static_cast<u64>(value_or_label(op));
        for (int i = 0; i < 4; ++i) emit_byte(static_cast<u8>(v >> (8 * i)));
      }
    } else if (d == ".word64") {
      for (const auto& op : stmt.operands) {
        const u64 v = static_cast<u64>(value_or_label(op));
        for (int i = 0; i < 8; ++i) emit_byte(static_cast<u8>(v >> (8 * i)));
      }
    } else if (d == ".asciz") {
      need(1);
      const auto& s = stmt.operands[0];
      if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
        fail(".asciz requires a quoted string");
      }
      for (std::size_t i = 1; i + 1 < s.size(); ++i) {
        char c = s[i];
        if (c == '\\' && i + 2 < s.size()) {
          ++i;
          switch (s[i]) {
            case 'n': c = '\n'; break;
            case 't': c = '\t'; break;
            case '0': c = '\0'; break;
            case '\\': c = '\\'; break;
            case '"': c = '"'; break;
            default: fail("unknown escape in string");
          }
        }
        emit_byte(static_cast<u8>(c));
      }
      emit_byte(0);
    } else {
      fail("unknown directive '" + d + "'");
    }
  }

  void instruction(const Statement& stmt) {
    const std::string& m = stmt.mnemonic;
    const auto& ops = stmt.operands;
    auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        fail(m + " expects " + std::to_string(n) + " operand(s), got " +
             std::to_string(ops.size()));
      }
    };

    // Pseudo-instructions first.
    if (m == "nop") {
      need(0);
      emit_word(encode_nop());
      return;
    }
    if (m == "mv") {
      need(2);
      emit_word(encode_itype(Opcode::kAddi, reg(ops[0]), reg(ops[1]), 0));
      return;
    }
    if (m == "li") {
      need(2);
      emit_li(reg(ops[0]), static_cast<u64>(literal(ops[1])));
      return;
    }
    if (m == "la") {
      need(2);
      emit_la(reg(ops[0]), ops[1]);
      return;
    }
    if (m == "j") {
      need(1);
      emit_jal(kZeroReg, ops[0]);
      return;
    }
    if (m == "call") {
      need(1);
      emit_jal(29 /*ra*/, ops[0]);
      return;
    }
    if (m == "ret") {
      need(0);
      emit_word(encode_jalr(kZeroReg, 29 /*ra*/, 0));
      return;
    }
    if (m == "beqz" || m == "bnez" || m == "bltz" || m == "bgez") {
      need(2);
      const Opcode op = m == "beqz"   ? Opcode::kBeq
                        : m == "bnez" ? Opcode::kBne
                        : m == "bltz" ? Opcode::kBlt
                                      : Opcode::kBge;
      emit_branch(op, reg(ops[0]), kZeroReg, ops[1]);
      return;
    }

    const auto it = opcode_table().find(m);
    if (it == opcode_table().end()) fail("unknown mnemonic '" + m + "'");
    const Opcode op = it->second;

    switch (format_of(op)) {
      case Format::kRType:
        need(3);
        emit_word(encode_rtype(op, reg(ops[0]), reg(ops[1]), reg(ops[2])));
        break;
      case Format::kIType: {
        need(3);
        const i64 imm = literal(ops[2]);
        if (op == Opcode::kAndi || op == Opcode::kOri || op == Opcode::kXori) {
          check_imm16_logical(imm);
        } else {
          check_imm16_signed(imm);
        }
        emit_word(encode_itype(op, reg(ops[0]), reg(ops[1]), imm));
        break;
      }
      case Format::kLoad: {
        need(2);
        const auto [disp, base] = mem_operand(ops[1]);
        emit_word(encode_load(op, reg(ops[0]), base, disp));
        break;
      }
      case Format::kStore: {
        need(2);
        const auto [disp, base] = mem_operand(ops[1]);
        emit_word(encode_store(op, reg(ops[0]), base, disp));
        break;
      }
      case Format::kBranch:
        need(3);
        emit_branch(op, reg(ops[0]), reg(ops[1]), ops[2]);
        break;
      case Format::kJal:
        need(2);
        emit_jal(reg(ops[0]), ops[1]);
        break;
      case Format::kJalr: {
        if (ops.size() == 2) {
          emit_word(encode_jalr(reg(ops[0]), reg(ops[1]), 0));
        } else {
          need(3);
          const i64 imm = literal(ops[2]);
          check_imm16_signed(imm);
          emit_word(encode_jalr(reg(ops[0]), reg(ops[1]), imm));
        }
        break;
      }
      case Format::kSystem:
        if (op == Opcode::kHalt) {
          need(0);
          emit_word(encode_halt());
        } else if (op == Opcode::kSync) {
          need(0);
          emit_word(encode_sync());
        } else {
          need(1);
          emit_word(encode_out(reg(ops[0])));
        }
        break;
      case Format::kIllegal:
        fail("internal: illegal opcode in table");
    }
  }

  Program finish() {
    Program program;
    program.name = name_;
    program.symbols = labels_;
    if (!text_.empty()) {
      program.segments.push_back(
          {options_.text_base, Perms::kReadExec, std::move(text_)});
    }
    if (!data_.empty()) {
      program.segments.push_back(
          {options_.data_base, Perms::kReadWrite, std::move(data_)});
    }
    const auto entry = labels_.find(options_.entry_symbol);
    if (entry == labels_.end()) {
      throw AsmError(0, "entry symbol '" + options_.entry_symbol + "' not defined");
    }
    program.entry = entry->second;
    return program;
  }

  AsmOptions options_;
  std::string name_;
  int pass_ = 1;
  std::size_t line_ = 0;
  Section section_ = Section::kText;
  u64 text_cursor_ = 0;
  u64 data_cursor_ = 0;
  std::vector<u8> text_;
  std::vector<u8> data_;
  std::map<std::string, u64> labels_;
};

}  // namespace

Program assemble(std::string_view source, const AsmOptions& options,
                 std::string program_name) {
  Assembler assembler(options, std::move(program_name));
  return assembler.run(source);
}

u8 parse_register(std::string_view token) {
  const auto& table = register_aliases();
  const auto it = table.find(to_lower(token));
  if (it == table.end()) {
    throw AsmError(0, "unknown register '" + std::string(token) + "'");
  }
  return it->second;
}

}  // namespace restore::isa
