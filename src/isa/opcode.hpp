// SRA-64 ("Simple RISC, Alpha-flavoured, 64-bit") opcode space.
//
// The ISA plays the role the Alpha ISA plays in the paper: a 64-bit RISC with
// 32 GPRs where r31 reads as zero, a large sparse virtual address space, and
// trapping arithmetic variants. Instructions are fixed 32-bit words with a
// 6-bit primary opcode in bits [31:26]. The opcode space is deliberately only
// ~75% populated so that bit flips in instruction words can produce
// ISA-illegal encodings, as on real machines.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace restore::isa {

enum class Opcode : u8 {
  // R-type: op rd, rs1, rs2 (rd <- rs1 op rs2)
  kAdd = 0x01,
  kSub = 0x02,
  kMul = 0x03,
  kDivu = 0x04,
  kRemu = 0x05,
  kAnd = 0x06,
  kOr = 0x07,
  kXor = 0x08,
  kSll = 0x09,
  kSrl = 0x0A,
  kSra = 0x0B,
  kSlt = 0x0C,
  kSltu = 0x0D,
  kSeq = 0x0E,
  kAddw = 0x0F,  // 32-bit add, result sign-extended
  kSubw = 0x10,
  kMulw = 0x11,
  kAddv = 0x12,  // trapping signed add (ArithOverflow)
  kSubv = 0x13,
  kMulv = 0x14,

  // I-type: op rd, rs1, imm16
  kAddi = 0x18,   // imm sign-extended
  kAndi = 0x19,   // imm ZERO-extended (logical immediates, as on Alpha/MIPS)
  kOri = 0x1A,    // imm zero-extended
  kXori = 0x1B,   // imm zero-extended
  kSlli = 0x1C,   // shift amount = imm & 63
  kSrli = 0x1D,
  kSrai = 0x1E,
  kSlti = 0x1F,   // imm sign-extended
  kSltiu = 0x20,
  kSeqi = 0x21,
  kLdih = 0x22,   // rd <- rs1 + (sext(imm16) << 16)  (Alpha LDAH)
  kAddiw = 0x23,  // 32-bit add-immediate, sign-extended result

  // Loads: op rd, imm16(rs1)
  kLb = 0x28,
  kLbu = 0x29,
  kLh = 0x2A,
  kLhu = 0x2B,
  kLw = 0x2C,
  kLwu = 0x2D,
  kLd = 0x2E,

  // Stores: op rs2, imm16(rs1) — data register encoded in the rd slot
  kSb = 0x30,
  kSh = 0x31,
  kSw = 0x32,
  kSd = 0x33,

  // Conditional branches: op rs1, rs2, disp16 (target = pc+4 + sext(disp)*4)
  kBeq = 0x34,
  kBne = 0x35,
  kBlt = 0x36,
  kBge = 0x37,
  kBltu = 0x38,
  kBgeu = 0x39,

  // Jumps
  kJal = 0x3A,   // rd <- pc+4; pc <- pc+4 + sext(disp21)*4
  kJalr = 0x3B,  // rd <- pc+4; pc <- (rs1 + sext(imm16)) & ~3

  // System
  kHalt = 0x3C,  // stop execution
  kOut = 0x3D,   // emit low byte of register in the rd slot to the output device
  kSync = 0x3E,  // synchronizing memory instruction: orders memory and forces
                 // a checkpoint in the ReStore architecture (paper §2.1)
};

enum class Format : u8 {
  kRType,    // rd, rs1, rs2
  kIType,    // rd, rs1, imm16
  kLoad,     // rd, imm16(rs1)
  kStore,    // rs2(data), imm16(rs1)
  kBranch,   // rs1, rs2, disp16
  kJal,      // rd, disp21
  kJalr,     // rd, rs1, imm16
  kSystem,   // halt / out
  kIllegal,
};

// Static properties of an opcode; returns Format::kIllegal for unpopulated
// encodings.
Format format_of(u8 raw_opcode) noexcept;

constexpr Format format_of(Opcode op) noexcept {
  const u8 raw = static_cast<u8>(op);
  if (raw >= 0x01 && raw <= 0x14) return Format::kRType;
  if (raw >= 0x18 && raw <= 0x23) return Format::kIType;
  if (raw >= 0x28 && raw <= 0x2E) return Format::kLoad;
  if (raw >= 0x30 && raw <= 0x33) return Format::kStore;
  if (raw >= 0x34 && raw <= 0x39) return Format::kBranch;
  if (op == Opcode::kJal) return Format::kJal;
  if (op == Opcode::kJalr) return Format::kJalr;
  if (op == Opcode::kHalt || op == Opcode::kOut || op == Opcode::kSync) {
    return Format::kSystem;
  }
  return Format::kIllegal;
}

constexpr bool is_load(Opcode op) noexcept { return format_of(op) == Format::kLoad; }
constexpr bool is_store(Opcode op) noexcept { return format_of(op) == Format::kStore; }
constexpr bool is_mem(Opcode op) noexcept { return is_load(op) || is_store(op); }
constexpr bool is_cond_branch(Opcode op) noexcept {
  return format_of(op) == Format::kBranch;
}
constexpr bool is_jump(Opcode op) noexcept {
  return op == Opcode::kJal || op == Opcode::kJalr;
}
constexpr bool is_control(Opcode op) noexcept {
  return is_cond_branch(op) || is_jump(op);
}
constexpr bool is_trapping_alu(Opcode op) noexcept {
  return op == Opcode::kAddv || op == Opcode::kSubv || op == Opcode::kMulv;
}

// Width in bytes of a memory access, 0 for non-memory ops.
constexpr unsigned mem_access_bytes(Opcode op) noexcept {
  switch (op) {
    case Opcode::kLb: case Opcode::kLbu: case Opcode::kSb: return 1;
    case Opcode::kLh: case Opcode::kLhu: case Opcode::kSh: return 2;
    case Opcode::kLw: case Opcode::kLwu: case Opcode::kSw: return 4;
    case Opcode::kLd: case Opcode::kSd: return 8;
    default: return 0;
  }
}

std::string_view mnemonic(Opcode op) noexcept;

}  // namespace restore::isa
