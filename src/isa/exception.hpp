// ISA-defined exceptions of the SRA-64 instruction set. These are the events
// the paper's primary symptom detector triggers on: "memory access faults ...
// arithmetic overflow or memory alignment exceptions" (§3.1).
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace restore::isa {

enum class ExceptionKind : u8 {
  kNone = 0,
  kIllegalInstruction,  // undecodable opcode (reachable only via corruption)
  kMemTranslation,      // access to an unmapped virtual page
  kMemAlignment,        // misaligned load/store/jump target
  kMemProtection,       // access violating page permissions
  kArithOverflow,       // trapping arithmetic (ADDV/SUBV/MULV) overflowed
  kDivByZero,           // DIVU/REMU with zero divisor
};

constexpr std::string_view to_string(ExceptionKind kind) noexcept {
  switch (kind) {
    case ExceptionKind::kNone: return "none";
    case ExceptionKind::kIllegalInstruction: return "illegal-instruction";
    case ExceptionKind::kMemTranslation: return "mem-translation";
    case ExceptionKind::kMemAlignment: return "mem-alignment";
    case ExceptionKind::kMemProtection: return "mem-protection";
    case ExceptionKind::kArithOverflow: return "arith-overflow";
    case ExceptionKind::kDivByZero: return "div-by-zero";
  }
  return "?";
}

}  // namespace restore::isa
