#include "isa/disasm.hpp"

#include <sstream>

namespace restore::isa {

std::string reg_name(u8 reg) {
  if (reg == kZeroReg) return "zero";
  // Built up in two steps: `"r" + std::to_string(reg)` trips GCC 12's
  // -Wrestrict false positive (PR105651) under -Werror.
  std::string name(1, 'r');
  name += std::to_string(reg);
  return name;
}

std::string disassemble(const DecodedInst& inst) {
  if (!inst.valid) return "<illegal>";
  std::ostringstream out;
  out << mnemonic(inst.op);
  switch (format_of(inst.op)) {
    case Format::kRType:
      out << ' ' << reg_name(inst.rd) << ", " << reg_name(inst.rs1) << ", "
          << reg_name(inst.rs2);
      break;
    case Format::kIType:
      out << ' ' << reg_name(inst.rd) << ", " << reg_name(inst.rs1) << ", "
          << inst.imm;
      break;
    case Format::kLoad:
      out << ' ' << reg_name(inst.rd) << ", " << inst.imm << '('
          << reg_name(inst.rs1) << ')';
      break;
    case Format::kStore:
      out << ' ' << reg_name(inst.rs2) << ", " << inst.imm << '('
          << reg_name(inst.rs1) << ')';
      break;
    case Format::kBranch:
      out << ' ' << reg_name(inst.rs1) << ", " << reg_name(inst.rs2) << ", "
          << inst.imm;
      break;
    case Format::kJal:
      out << ' ' << reg_name(inst.rd) << ", " << inst.imm;
      break;
    case Format::kJalr:
      out << ' ' << reg_name(inst.rd) << ", " << reg_name(inst.rs1) << ", "
          << inst.imm;
      break;
    case Format::kSystem:
      if (inst.op == Opcode::kOut) out << ' ' << reg_name(inst.rs1);
      break;
    case Format::kIllegal:
      break;
  }
  return out.str();
}

std::string disassemble(u32 word) { return disassemble(decode(word)); }

}  // namespace restore::isa
