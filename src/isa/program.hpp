// A loadable program image: segments with permissions, an entry point, and a
// symbol table. Produced by the assembler, consumed by the architectural VM
// and the microarchitectural core.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace restore::isa {

enum class Perms : u8 {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kExec = 4,
  kReadWrite = kRead | kWrite,
  kReadExec = kRead | kExec,
};

constexpr Perms operator|(Perms a, Perms b) noexcept {
  return static_cast<Perms>(static_cast<u8>(a) | static_cast<u8>(b));
}
constexpr bool has_perm(Perms set, Perms wanted) noexcept {
  return (static_cast<u8>(set) & static_cast<u8>(wanted)) == static_cast<u8>(wanted);
}

struct Segment {
  u64 vaddr = 0;
  Perms perms = Perms::kNone;
  std::vector<u8> bytes;
};

struct Program {
  std::string name;
  std::vector<Segment> segments;
  u64 entry = 0;
  std::map<std::string, u64> symbols;

  // Stack region mapped by the loader; stack pointer starts at
  // stack_top (16-byte aligned, grows down).
  u64 stack_top = 0x7FFF'FFF0;
  u64 stack_bytes = 64 * 1024;

  // Lookup a symbol; throws std::out_of_range if missing.
  u64 symbol(const std::string& sym) const { return symbols.at(sym); }

  // Total bytes across all segments (excluding the stack region).
  std::size_t image_bytes() const noexcept;
};

}  // namespace restore::isa
