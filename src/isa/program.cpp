#include "isa/program.hpp"

namespace restore::isa {

std::size_t Program::image_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& seg : segments) total += seg.bytes.size();
  return total;
}

}  // namespace restore::isa
