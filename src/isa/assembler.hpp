// Two-pass text assembler for SRA-64.
//
// Supports labels, .text/.data sections, data directives, register aliases
// and a small set of pseudo-instructions (li/la/mv/j/call/ret/beqz/...). The
// seven SPECint-analog workloads in src/workloads are written in this
// assembly dialect.
//
// Syntax example:
//
//   .text
//   main:   la    a0, buf
//           li    a1, 256
//   loop:   beqz  a1, done
//           lbu   t0, 0(a0)
//           addi  a0, a0, 1
//           addi  a1, a1, -1
//           j     loop
//   done:   halt
//   .data
//   buf:    .space 256
//
// Register aliases: zero=r31, sp=r30, ra=r29, rv=r1, a0-a5=r2-r7,
// t0-t11=r8-r19, s0-s8=r20-r28.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace restore::isa {

struct AsmOptions {
  u64 text_base = 0x10000;
  u64 data_base = 0x200000;
  std::string entry_symbol = "main";
};

class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

// Assemble `source` into a loadable Program. Throws AsmError on any syntax or
// range error.
Program assemble(std::string_view source, const AsmOptions& options = {},
                 std::string program_name = "a.out");

// Parse a register name ("r5", "sp", "a0", "zero"); throws AsmError (line 0)
// on failure. Exposed for tests.
u8 parse_register(std::string_view token);

}  // namespace restore::isa
