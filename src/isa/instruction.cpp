#include "isa/instruction.hpp"

#include <cassert>

#include "common/bits.hpp"

namespace restore::isa {

namespace {

constexpr u32 pack(Opcode op, u32 rd, u32 rs1, u32 low16) noexcept {
  return (static_cast<u32>(op) << 26) | ((rd & 31u) << 21) | ((rs1 & 31u) << 16) |
         (low16 & 0xFFFFu);
}

}  // namespace

Format format_of(u8 raw_opcode) noexcept {
  // Delegate to the typed overload; out-of-range values fall through to
  // kIllegal there because the enum ranges are explicit.
  return format_of(static_cast<Opcode>(raw_opcode & 0x3F));
}

DecodedInst decode(u32 word) noexcept {
  DecodedInst inst;
  const u8 raw_op = static_cast<u8>(extract_bits(word, 26, 6));
  const Format fmt = format_of(raw_op);
  inst.op = static_cast<Opcode>(raw_op);
  inst.valid = fmt != Format::kIllegal;
  if (!inst.valid) return inst;

  const u8 f_rd = static_cast<u8>(extract_bits(word, 21, 5));
  const u8 f_rs1 = static_cast<u8>(extract_bits(word, 16, 5));
  const u8 f_rs2 = static_cast<u8>(extract_bits(word, 11, 5));
  const u64 imm16 = extract_bits(word, 0, 16);

  switch (fmt) {
    case Format::kRType:
      inst.rd = f_rd;
      inst.rs1 = f_rs1;
      inst.rs2 = f_rs2;
      break;
    case Format::kIType:
      inst.rd = f_rd;
      inst.rs1 = f_rs1;
      // Logical immediates zero-extend; arithmetic immediates sign-extend.
      if (inst.op == Opcode::kAndi || inst.op == Opcode::kOri ||
          inst.op == Opcode::kXori) {
        inst.imm = static_cast<i64>(imm16);
      } else {
        inst.imm = sign_extend(imm16, 16);
      }
      break;
    case Format::kLoad:
      inst.rd = f_rd;
      inst.rs1 = f_rs1;
      inst.imm = sign_extend(imm16, 16);
      break;
    case Format::kStore:
      inst.rs2 = f_rd;  // data register lives in the rd slot
      inst.rs1 = f_rs1;
      inst.imm = sign_extend(imm16, 16);
      break;
    case Format::kBranch:
      inst.rs1 = f_rd;
      inst.rs2 = f_rs1;
      inst.imm = sign_extend(imm16, 16) * 4;  // displacement in bytes
      break;
    case Format::kJal:
      inst.rd = f_rd;
      inst.imm = sign_extend(extract_bits(word, 0, 21), 21) * 4;
      break;
    case Format::kJalr:
      inst.rd = f_rd;
      inst.rs1 = f_rs1;
      inst.imm = sign_extend(imm16, 16);
      break;
    case Format::kSystem:
      if (inst.op == Opcode::kOut) inst.rs1 = f_rd;  // register to emit
      break;
    case Format::kIllegal:
      break;
  }
  return inst;
}

u32 encode_rtype(Opcode op, u8 rd, u8 rs1, u8 rs2) noexcept {
  assert(format_of(op) == Format::kRType);
  return pack(op, rd, rs1, (static_cast<u32>(rs2 & 31u) << 11));
}

u32 encode_itype(Opcode op, u8 rd, u8 rs1, i64 imm16) noexcept {
  assert(format_of(op) == Format::kIType);
  return pack(op, rd, rs1, static_cast<u32>(imm16 & 0xFFFF));
}

u32 encode_load(Opcode op, u8 rd, u8 base, i64 disp16) noexcept {
  assert(format_of(op) == Format::kLoad);
  return pack(op, rd, base, static_cast<u32>(disp16 & 0xFFFF));
}

u32 encode_store(Opcode op, u8 data, u8 base, i64 disp16) noexcept {
  assert(format_of(op) == Format::kStore);
  return pack(op, data, base, static_cast<u32>(disp16 & 0xFFFF));
}

u32 encode_branch(Opcode op, u8 rs1, u8 rs2, i64 disp_bytes) noexcept {
  assert(format_of(op) == Format::kBranch);
  assert(disp_bytes % 4 == 0);
  const i64 units = disp_bytes / 4;
  assert(units >= -(1 << 15) && units < (1 << 15));
  return pack(op, rs1, rs2, static_cast<u32>(units & 0xFFFF));
}

u32 encode_jal(u8 rd, i64 disp_bytes) noexcept {
  assert(disp_bytes % 4 == 0);
  const i64 units = disp_bytes / 4;
  assert(units >= -(1 << 20) && units < (1 << 20));
  return (static_cast<u32>(Opcode::kJal) << 26) | ((rd & 31u) << 21) |
         (static_cast<u32>(units) & 0x1FFFFFu);
}

u32 encode_jalr(u8 rd, u8 rs1, i64 imm16) noexcept {
  return pack(Opcode::kJalr, rd, rs1, static_cast<u32>(imm16 & 0xFFFF));
}

u32 encode_halt() noexcept { return static_cast<u32>(Opcode::kHalt) << 26; }

u32 encode_out(u8 reg) noexcept {
  return (static_cast<u32>(Opcode::kOut) << 26) | ((reg & 31u) << 21);
}

u32 encode_sync() noexcept { return static_cast<u32>(Opcode::kSync) << 26; }

std::optional<u64> static_target(const DecodedInst& inst, u64 pc) noexcept {
  if (!inst.valid) return std::nullopt;
  if (is_cond_branch(inst.op) || inst.op == Opcode::kJal) {
    return pc + 4 + static_cast<u64>(inst.imm);
  }
  return std::nullopt;
}

std::string_view mnemonic(Opcode op) noexcept {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDivu: return "divu";
    case Opcode::kRemu: return "remu";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kSll: return "sll";
    case Opcode::kSrl: return "srl";
    case Opcode::kSra: return "sra";
    case Opcode::kSlt: return "slt";
    case Opcode::kSltu: return "sltu";
    case Opcode::kSeq: return "seq";
    case Opcode::kAddw: return "addw";
    case Opcode::kSubw: return "subw";
    case Opcode::kMulw: return "mulw";
    case Opcode::kAddv: return "addv";
    case Opcode::kSubv: return "subv";
    case Opcode::kMulv: return "mulv";
    case Opcode::kAddi: return "addi";
    case Opcode::kAndi: return "andi";
    case Opcode::kOri: return "ori";
    case Opcode::kXori: return "xori";
    case Opcode::kSlli: return "slli";
    case Opcode::kSrli: return "srli";
    case Opcode::kSrai: return "srai";
    case Opcode::kSlti: return "slti";
    case Opcode::kSltiu: return "sltiu";
    case Opcode::kSeqi: return "seqi";
    case Opcode::kLdih: return "ldih";
    case Opcode::kAddiw: return "addiw";
    case Opcode::kLb: return "lb";
    case Opcode::kLbu: return "lbu";
    case Opcode::kLh: return "lh";
    case Opcode::kLhu: return "lhu";
    case Opcode::kLw: return "lw";
    case Opcode::kLwu: return "lwu";
    case Opcode::kLd: return "ld";
    case Opcode::kSb: return "sb";
    case Opcode::kSh: return "sh";
    case Opcode::kSw: return "sw";
    case Opcode::kSd: return "sd";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kBltu: return "bltu";
    case Opcode::kBgeu: return "bgeu";
    case Opcode::kJal: return "jal";
    case Opcode::kJalr: return "jalr";
    case Opcode::kHalt: return "halt";
    case Opcode::kOut: return "out";
    case Opcode::kSync: return "sync";
  }
  return "illegal";
}

}  // namespace restore::isa
