// Instruction word encode/decode for SRA-64.
//
// Encoding (32-bit word):
//   [31:26] opcode
//   [25:21] rd   (data register for stores; rs1 for branches; reg for OUT)
//   [20:16] rs1  (rs2 for branches)
//   [15:11] rs2  (R-type only)
//   [15:0]  imm16 (I-type / load / store / branch displacement)
//   [20:0]  disp21 (JAL)
#pragma once

#include <optional>

#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace restore::isa {

inline constexpr unsigned kNumArchRegs = 32;
inline constexpr u8 kZeroReg = 31;  // r31 always reads as zero

struct DecodedInst {
  Opcode op = Opcode::kHalt;
  bool valid = false;  // false => illegal encoding
  u8 rd = kZeroReg;    // destination register (kZeroReg when none)
  u8 rs1 = kZeroReg;   // first source
  u8 rs2 = kZeroReg;   // second source (store data register for stores)
  i64 imm = 0;         // extended immediate / branch displacement in BYTES

  bool writes_reg() const noexcept {
    if (!valid || rd == kZeroReg) return false;
    switch (format_of(op)) {
      case Format::kRType:
      case Format::kIType:
      case Format::kLoad:
      case Format::kJal:
      case Format::kJalr:
        return true;
      default:
        return false;
    }
  }
  bool reads_rs1() const noexcept {
    if (!valid) return false;
    switch (format_of(op)) {
      case Format::kRType:
      case Format::kIType:
      case Format::kLoad:
      case Format::kStore:
      case Format::kBranch:
      case Format::kJalr:
        return true;
      default:
        return false;
    }
  }
  bool reads_rs2() const noexcept {
    if (!valid) return false;
    switch (format_of(op)) {
      case Format::kRType:
      case Format::kStore:
      case Format::kBranch:
        return true;
      default:
        return false;
    }
  }
};

// Decode a raw instruction word. Always returns a DecodedInst; `valid` is
// false for unpopulated opcodes (the ISA-illegal case a flipped bit can
// produce).
DecodedInst decode(u32 word) noexcept;

// --- Encoders (used by the assembler and by tests) ---
u32 encode_rtype(Opcode op, u8 rd, u8 rs1, u8 rs2) noexcept;
u32 encode_itype(Opcode op, u8 rd, u8 rs1, i64 imm16) noexcept;
u32 encode_load(Opcode op, u8 rd, u8 base, i64 disp16) noexcept;
u32 encode_store(Opcode op, u8 data, u8 base, i64 disp16) noexcept;
// disp_bytes must be a multiple of 4 and fit in 16 (branch) / 21 (jal) bits
// after division by 4.
u32 encode_branch(Opcode op, u8 rs1, u8 rs2, i64 disp_bytes) noexcept;
u32 encode_jal(u8 rd, i64 disp_bytes) noexcept;
u32 encode_jalr(u8 rd, u8 rs1, i64 imm16) noexcept;
u32 encode_halt() noexcept;
u32 encode_out(u8 reg) noexcept;
u32 encode_sync() noexcept;
inline u32 encode_nop() noexcept { return encode_itype(Opcode::kAddi, kZeroReg, kZeroReg, 0); }

// Branch / JAL target for a decoded control instruction located at `pc`.
// For kJalr the target depends on a register value and this returns nullopt.
std::optional<u64> static_target(const DecodedInst& inst, u64 pc) noexcept;

}  // namespace restore::isa
