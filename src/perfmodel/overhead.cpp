#include "perfmodel/overhead.hpp"

#include <cmath>

#include "uarch/core.hpp"
#include "workloads/workloads.hpp"

namespace restore::perfmodel {

std::vector<OverheadPoint> measure_rollback_overhead(const OverheadConfig& config) {
  std::vector<OverheadPoint> points;

  std::vector<const workloads::Workload*> selected;
  if (config.workloads.empty()) {
    for (const auto& wl : workloads::all()) selected.push_back(&wl);
  } else {
    for (const auto& name : config.workloads) {
      selected.push_back(&workloads::by_name(name));
    }
  }

  for (const workloads::Workload* wl : selected) {
    // Baseline: plain core, no checkpointing.
    uarch::Core baseline(wl->program);
    baseline.run(200'000'000);
    const u64 base_cycles = baseline.cycle_count();

    for (const u64 interval : config.intervals) {
      for (const auto policy :
           {core::RollbackPolicy::kImmediate, core::RollbackPolicy::kDelayed}) {
        core::ReStoreOptions options;
        options.checkpoint_interval = interval;
        options.policy = policy;
        options.exception_symptom = true;   // fires only on real faults (none)
        options.branch_symptom = true;      // the false-positive source
        options.throttle_max_rollbacks = ~u64{0};  // throttling off (Fig. 7)

        core::ReStoreCore restore(wl->program, options);
        restore.run(400'000'000);

        OverheadPoint point;
        point.workload = wl->name;
        point.interval = interval;
        point.policy = policy;
        point.baseline_cycles = base_cycles;
        point.restore_cycles = restore.cycle_count();
        point.rollbacks = restore.stats().rollbacks;
        point.reexecuted_insns = restore.stats().reexecuted_insns;
        point.speedup = point.restore_cycles == 0
                            ? 1.0
                            : static_cast<double>(base_cycles) /
                                  static_cast<double>(point.restore_cycles);
        points.push_back(point);
      }
    }
  }
  return points;
}

double mean_speedup(const std::vector<OverheadPoint>& points, u64 interval,
                    core::RollbackPolicy policy) {
  double log_sum = 0.0;
  int count = 0;
  for (const auto& p : points) {
    if (p.interval != interval || p.policy != policy) continue;
    log_sum += std::log(p.speedup);
    ++count;
  }
  return count == 0 ? 1.0 : std::exp(log_sum / count);
}

double analytic_speedup(double symptom_rate, u64 interval,
                        core::RollbackPolicy policy, double cpi_ratio) {
  if (interval == 0) return 1.0;
  const double n = static_cast<double>(interval);
  // Expected rollbacks per instruction.
  double rollback_rate = symptom_rate;
  double distance = 1.5 * n;  // two live checkpoints -> mean distance 1.5n
  if (policy == core::RollbackPolicy::kDelayed) {
    // At most one rollback per interval; the probability an interval
    // contains >= 1 symptom is 1 - (1-r)^n.
    const double p_interval = 1.0 - std::pow(1.0 - symptom_rate, n);
    rollback_rate = p_interval / n;
    // Rollback happens at the boundary: distance from the older checkpoint
    // is a full two intervals.
    distance = 2.0 * n;
  }
  const double overhead = rollback_rate * distance * cpi_ratio;
  return 1.0 / (1.0 + overhead);
}

}  // namespace restore::perfmodel
