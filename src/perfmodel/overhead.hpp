// Performance impact of false-positive symptoms (paper §5.2.3, Figure 7).
//
// Two evaluations are provided:
//
//  * measure_rollback_overhead — runs the real ReStoreCore (immediate or
//    delayed rollback) on fault-free workloads and reports the slowdown
//    caused by false-positive high-confidence-mispredict rollbacks, relative
//    to the baseline core without checkpointing. This substitutes direct
//    simulation for the paper's "high level performance model"; the paper's
//    event-log-perfect re-execution is approximated by suppressing symptom
//    re-triggering during replay (re-executed instructions still pay normal
//    branch penalties, so measured overheads are slightly conservative).
//
//  * analytic_speedup — the closed-form model: with symptom rate r per
//    instruction, checkpoint interval n and two live checkpoints, each
//    rollback re-executes ~1.5n instructions, so
//        speedup = 1 / (1 + r_eff * 1.5n * cpi_ratio)
//    where r_eff accounts for at most one rollback per interval under the
//    delayed policy.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/restore_core.hpp"

namespace restore::perfmodel {

struct OverheadPoint {
  std::string workload;
  u64 interval = 0;
  core::RollbackPolicy policy = core::RollbackPolicy::kImmediate;
  u64 baseline_cycles = 0;
  u64 restore_cycles = 0;
  u64 rollbacks = 0;
  u64 reexecuted_insns = 0;
  double speedup = 1.0;  // baseline_cycles / restore_cycles (<= 1)
};

struct OverheadConfig {
  std::vector<u64> intervals = {25, 50, 100, 200, 500, 1000};
  std::vector<std::string> workloads;  // empty = all seven
  // Throttling is disabled for this study (the paper's Figure 7 measures the
  // raw false-positive cost).
};

std::vector<OverheadPoint> measure_rollback_overhead(const OverheadConfig& config);

// Geometric-mean speedup across workloads for one (interval, policy) cell.
double mean_speedup(const std::vector<OverheadPoint>& points, u64 interval,
                    core::RollbackPolicy policy);

// Closed-form estimate (see file comment). `symptom_rate` = false-positive
// symptoms per retired instruction; `cpi_ratio` = re-execution CPI relative
// to baseline CPI (1.0 = same speed, <1.0 = faster replay).
double analytic_speedup(double symptom_rate, u64 interval,
                        core::RollbackPolicy policy, double cpi_ratio = 1.0);

}  // namespace restore::perfmodel
