// Fault-model taxonomy for the injection campaigns.
//
// The paper's evaluation injects single bit flips into latches and SRAM
// (§4.2); its symptom-detection argument only generalizes if coverage holds
// under realistic upset models. This header defines the expanded model space:
//
//   single    one bit of one state element (the paper's model; the default)
//   multi     k physically adjacent bits of one entry (multi-bit upset)
//   burst     the same bit column across n consecutive entries of one SRAM
//             array (spatially-correlated column upset over the geometry in
//             the audited state manifest)
//   set       a single-event transient: a latch captures a wrong value for
//             one cycle, then the combinational cone re-evaluates and the
//             glitch clears (Azambuja et al., SEU+SET)
//   targeted  load/store-targeted injection (LSQ structures at the uarch
//             level; load-result / store-point sites at the arch level)
//   rate      rate-driven injection where the per-trial upset probability is
//             a function of the operating point (supply voltage and clock
//             frequency), after the DVFS-dependent error-rate idiom
//
// Every model draws its plan from a per-shard *substream* seeded off the
// shard seed and the model tag (see model_stream_seed in orchestrator.hpp),
// so byte identity at any worker count — and across interrupt+resume — is
// preserved, and the default single-bit model keeps drawing from the primary
// shard stream exactly as before (existing traces stay byte-identical).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "uarch/state_registry.hpp"

namespace restore::faultinject {

enum class FaultModel : u8 {
  kSingleBit,
  kMultiBitAdjacent,
  kBurst,
  kSet,
  kTargeted,
  kRateDriven,
};

struct FaultModelConfig {
  FaultModel model = FaultModel::kSingleBit;
  // kMultiBitAdjacent: bits flipped together (adjacent within one entry).
  u32 multi_bits = 2;
  // kBurst: consecutive entries sharing the flipped bit column.
  u32 burst_entries = 2;
  // kTargeted: "load" or "store".
  std::string target = "load";
  // kRateDriven operating point: upset probability per trial is
  //   min(1, upset_ppm/1e6 * (1000/freq_mhz) * 2^((1000 - vdd_mv)/250))
  // — lower voltage raises the rate exponentially, higher frequency shortens
  // the per-cycle exposure window. Defaults are the nominal point where the
  // rate equals upset_ppm/1e6.
  u64 vdd_mv = 1000;
  u64 freq_mhz = 1000;
  u64 upset_ppm = 1'000'000;  // certain upset at the nominal point
};

// Short stable token ("single", "multi", "burst", "set", "targeted", "rate");
// recorded per trial in the JSONL trace and used by CLI/wire encodings.
std::string_view to_string(FaultModel model) noexcept;
std::optional<FaultModel> fault_model_from_string(std::string_view name) noexcept;

// True for the paper's single-bit model: the campaign behaves (and hashes,
// and serializes) exactly as before this subsystem existed.
bool is_default_fault_model(const FaultModelConfig& config) noexcept;

// Identity segment appended to campaign config-hash keys (only for
// non-default models, so pre-existing manifests keep resuming cleanly).
// Includes every knob the selected model reads.
std::string fault_model_identity_key(const FaultModelConfig& config);

// Per-trial upset probability of the rate-driven model at the configured
// operating point (see FaultModelConfig).
double upset_probability(const FaultModelConfig& config) noexcept;

// Structural validation; throws std::invalid_argument on a config the target
// campaign cannot run (burst/SET need microarchitectural state, so the vm
// campaign rejects them; targeted needs target "load" or "store"; multi/burst
// extents must be >= 2 and within the state geometry).
void validate_fault_model(const FaultModelConfig& config, bool vm_campaign);

// One trial's injection set: the bits flipped together at the injection
// point, whether the flip is a one-cycle transient (SET: any bit whose latch
// was not overwritten during the first monitored cycle reverts), and whether
// the rate-driven model upset this trial at all (false = no flip; the trial
// is recorded as masked with an explicit "upset":false marker).
struct InjectionPlan {
  std::vector<uarch::BitRef> bits;
  bool transient = false;
  bool upset = true;
};

// Sample one microarchitectural injection plan from the model's substream.
// The single-bit model is handled by the campaigns on the primary shard
// stream (for byte identity with existing traces); this sampler covers it too
// for tests. `latches_only` narrows eligible state for the models that honor
// it (single/multi/targeted/rate); burst is kSram and SET kLatch by
// definition. Throws std::invalid_argument when no eligible state matches.
InjectionPlan sample_injection_plan(const FaultModelConfig& config,
                                    const uarch::StateRegistry& registry,
                                    bool latches_only, Rng& model_rng);

// Extra flipped bits (everything past the plan's primary bit) are recorded in
// the JSONL trace as packed u64s so the round trip is exact.
u64 pack_bit_ref(const uarch::BitRef& ref) noexcept;
uarch::BitRef unpack_bit_ref(u64 packed) noexcept;

// Shared fault-model CLI surface, understood by every campaign binary:
//   --fault-model single|multi|burst|set|targeted|rate
//                      (RESTORE_FAULT_MODEL environment fallback)
//   --fault-bits K     multi: adjacent bits flipped together
//   --burst-entries N  burst: consecutive SRAM entries in the column
//   --fault-target load|store
//   --vdd-mv MV / --freq-mhz MHZ / --upset-ppm PPM
//                      rate: operating point and nominal upset rate
// All of them are identity-class: they resolve into FaultModelConfig, which
// feeds config_hash whenever the model is non-default.
FaultModelConfig fault_model_from_cli(const CliArgs& args);

}  // namespace restore::faultinject
