#include "faultinject/trial_speed.hpp"

#include <mutex>

namespace restore::faultinject {

namespace {

std::mutex& config_mutex() {
  static std::mutex mutex;
  return mutex;
}

TrialSpeedConfig& config_storage() {
  static TrialSpeedConfig config;
  return config;
}

}  // namespace

TrialSpeedConfig trial_speed() noexcept {
  std::lock_guard lock(config_mutex());
  return config_storage();
}

void set_trial_speed(const TrialSpeedConfig& config) noexcept {
  std::lock_guard lock(config_mutex());
  config_storage() = config;
}

}  // namespace restore::faultinject
