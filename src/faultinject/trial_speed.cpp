#include "faultinject/trial_speed.hpp"

#include "common/thread_annotations.hpp"

namespace restore::faultinject {

namespace {

// The process-wide config lives behind one annotated mutex. A struct (rather
// than two function-local statics) lets the thread-safety analysis tie the
// guarded data to its guard through a single object.
struct ConfigStore {
  Mutex mutex;
  TrialSpeedConfig config RESTORE_GUARDED_BY(mutex);
};

ConfigStore& config_store() {
  static ConfigStore store;
  return store;
}

}  // namespace

TrialSpeedConfig trial_speed() noexcept {
  ConfigStore& store = config_store();
  MutexLock lock(store.mutex);
  return store.config;
}

void set_trial_speed(const TrialSpeedConfig& config) noexcept {
  ConfigStore& store = config_store();
  MutexLock lock(store.mutex);
  store.config = config;
}

}  // namespace restore::faultinject
