#include "faultinject/campaign_io.hpp"

#include "common/flatjson.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace restore::faultinject {

namespace {

// Flat-JSON reading/writing is shared with the service wire protocol; see
// common/flatjson.hpp. The aliases keep the codec bodies below unchanged.
using flatjson::append_field;
using flatjson::append_string;  // quoted-and-escaped JSON string
using flatjson::find;
using flatjson::get_bool;
using flatjson::get_string;
using flatjson::get_uint;
using JsonValue = flatjson::Value;
using JsonObject = flatjson::Object;

// Latency fields: kNever is represented by absence.
void append_latency(std::string& out, std::string_view key, u64 latency) {
  if (latency == kNever) return;
  out.push_back(',');
  append_field(out, key, latency);
}

u64 get_latency(const JsonObject& obj, const std::string& key) {
  return get_uint(obj, key).value_or(kNever);
}

}  // namespace

u64 fnv1a(std::string_view bytes, u64 seed) noexcept {
  u64 hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string_view to_string(uarch::StorageClass storage) noexcept {
  return storage == uarch::StorageClass::kLatch ? "latch" : "sram";
}

std::string_view to_string(uarch::LhfProtection protection) noexcept {
  switch (protection) {
    case uarch::LhfProtection::kNone: return "none";
    case uarch::LhfProtection::kParity: return "parity";
    case uarch::LhfProtection::kEcc: return "ecc";
  }
  return "?";
}

std::optional<VmOutcome> vm_outcome_from_string(std::string_view name) noexcept {
  for (const auto outcome :
       {VmOutcome::kMasked, VmOutcome::kException, VmOutcome::kCfv,
        VmOutcome::kMemAddr, VmOutcome::kMemData, VmOutcome::kRegister,
        VmOutcome::kSimAbort, VmOutcome::kResourceExhausted}) {
    if (name == to_string(outcome)) return outcome;
  }
  return std::nullopt;
}

std::optional<uarch::StorageClass> storage_from_string(std::string_view name) noexcept {
  if (name == "latch") return uarch::StorageClass::kLatch;
  if (name == "sram") return uarch::StorageClass::kSram;
  return std::nullopt;
}

std::optional<uarch::LhfProtection> protection_from_string(
    std::string_view name) noexcept {
  if (name == "none") return uarch::LhfProtection::kNone;
  if (name == "parity") return uarch::LhfProtection::kParity;
  if (name == "ecc") return uarch::LhfProtection::kEcc;
  return std::nullopt;
}

// ---- manifest ----

std::string manifest_path_for(const std::string& jsonl_path) {
  return jsonl_path + ".manifest.json";
}

void write_manifest(const std::string& path, const CampaignManifest& manifest) {
  std::string out = "{";
  append_field(out, "schema_version", manifest.schema_version);
  out.push_back(',');
  append_field(out, "kind", std::string_view(manifest.kind));
  out.push_back(',');
  append_field(out, "config_hash", manifest.config_hash);
  out.push_back(',');
  append_field(out, "seed", manifest.seed);
  out.push_back(',');
  append_field(out, "shard_trials", manifest.shard_trials);
  out.push_back(',');
  append_field(out, "total_shards", manifest.total_shards);
  out.push_back(',');
  append_field(out, "total_trials", manifest.total_trials);
  const auto append_array = [&out](std::string_view key, const std::vector<u64>& xs) {
    out += ",\"";
    out += key;
    out += "\":[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += std::to_string(xs[i]);
    }
    out.push_back(']');
  };
  append_array("completed", manifest.completed);
  append_array("completed_trials", manifest.completed_trials);
  append_array("wall_ms", manifest.wall_ms);
  const auto append_string_array = [&out](std::string_view key,
                                          const std::vector<std::string>& xs) {
    out += ",\"";
    out += key;
    out += "\":[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_string(out, xs[i]);
    }
    out.push_back(']');
  };
  // Quarantine record, written only when present so clean-run manifests keep
  // their historical shape (modulo schema_version).
  if (manifest.has_quarantine()) {
    append_array("quarantined", manifest.quarantined);
    append_array("quarantine_attempts", manifest.quarantine_attempts);
    append_string_array("quarantine_workloads", manifest.quarantine_workloads);
    append_string_array("quarantine_errors", manifest.quarantine_errors);
  }
  // Fleet node-quarantine record: same written-only-when-present contract,
  // so single-machine campaigns stay byte-identical to their historical form.
  if (manifest.has_node_quarantine()) {
    append_string_array("node_quarantined", manifest.node_quarantined);
    append_array("node_faults", manifest.node_faults);
    append_string_array("node_errors", manifest.node_errors);
  }
  out += "}\n";

  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) throw std::runtime_error("cannot write manifest: " + tmp);
    file << out;
    if (!file.flush()) throw std::runtime_error("manifest write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot replace manifest: " + path);
  }
}

std::optional<CampaignManifest> read_manifest(const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  const auto obj = flatjson::parse(text);
  if (!obj) throw std::runtime_error("unparseable campaign manifest: " + path);

  CampaignManifest manifest;
  // Absent schema_version = the v1 pre-versioning format (accepted as
  // legacy); anything newer than this build understands is rejected outright
  // rather than misparsed.
  manifest.schema_version = get_uint(*obj, "schema_version").value_or(1);
  if (manifest.schema_version > kCampaignSchemaVersion) {
    throw std::runtime_error(
        "campaign manifest " + path + " has schema_version " +
        std::to_string(manifest.schema_version) +
        ", but this build only understands versions up to " +
        std::to_string(kCampaignSchemaVersion) +
        "; refusing to resume (upgrade the tools or restart the campaign)");
  }
  const auto kind = get_string(*obj, "kind");
  const auto hash = get_uint(*obj, "config_hash");
  const auto seed = get_uint(*obj, "seed");
  const auto shard_trials = get_uint(*obj, "shard_trials");
  const auto total_shards = get_uint(*obj, "total_shards");
  const auto total_trials = get_uint(*obj, "total_trials");
  if (!kind || !hash || !seed || !shard_trials || !total_shards || !total_trials) {
    throw std::runtime_error("campaign manifest missing fields: " + path);
  }
  manifest.kind = *kind;
  manifest.config_hash = *hash;
  manifest.seed = *seed;
  manifest.shard_trials = *shard_trials;
  manifest.total_shards = *total_shards;
  manifest.total_trials = *total_trials;
  const auto read_array = [&](const char* key) -> std::vector<u64> {
    const JsonValue* v = find(*obj, key);
    if (v == nullptr || v->kind != JsonValue::Kind::kUintArray) {
      throw std::runtime_error(std::string("campaign manifest missing array `") +
                               key + "`: " + path);
    }
    return v->array;
  };
  manifest.completed = read_array("completed");
  manifest.completed_trials = read_array("completed_trials");
  manifest.wall_ms = read_array("wall_ms");
  if (manifest.completed.size() != manifest.completed_trials.size() ||
      manifest.completed.size() != manifest.wall_ms.size()) {
    throw std::runtime_error("campaign manifest arrays disagree: " + path);
  }
  // Quarantine arrays are optional (absent in v1 manifests and in clean v2
  // runs) but must agree in length when present.
  const auto read_optional_array = [&](const char* key) -> std::vector<u64> {
    const JsonValue* v = find(*obj, key);
    if (v == nullptr) return {};
    if (v->kind != JsonValue::Kind::kUintArray) {
      throw std::runtime_error(std::string("campaign manifest array `") + key +
                               "` has the wrong type: " + path);
    }
    return v->array;
  };
  const auto read_optional_string_array =
      [&](const char* key) -> std::vector<std::string> {
    const JsonValue* v = find(*obj, key);
    if (v == nullptr) return {};
    if (v->kind == JsonValue::Kind::kUintArray && v->array.empty()) return {};
    if (v->kind != JsonValue::Kind::kStringArray) {
      throw std::runtime_error(std::string("campaign manifest array `") + key +
                               "` has the wrong type: " + path);
    }
    return v->str_array;
  };
  manifest.quarantined = read_optional_array("quarantined");
  manifest.quarantine_attempts = read_optional_array("quarantine_attempts");
  manifest.quarantine_workloads = read_optional_string_array("quarantine_workloads");
  manifest.quarantine_errors = read_optional_string_array("quarantine_errors");
  if (manifest.quarantined.size() != manifest.quarantine_attempts.size() ||
      manifest.quarantined.size() != manifest.quarantine_workloads.size() ||
      manifest.quarantined.size() != manifest.quarantine_errors.size()) {
    throw std::runtime_error("campaign manifest quarantine arrays disagree: " + path);
  }
  manifest.node_quarantined = read_optional_string_array("node_quarantined");
  manifest.node_faults = read_optional_array("node_faults");
  manifest.node_errors = read_optional_string_array("node_errors");
  if (manifest.node_quarantined.size() != manifest.node_faults.size() ||
      manifest.node_quarantined.size() != manifest.node_errors.size()) {
    throw std::runtime_error("campaign manifest node-quarantine arrays disagree: " +
                             path);
  }
  return manifest;
}

// ---- trace header ----

std::string trace_header_line(std::string_view kind) {
  std::string out = "{";
  append_field(out, "schema_version", kCampaignSchemaVersion);
  out.push_back(',');
  append_field(out, "kind", kind);
  out.push_back('}');
  return out;
}

std::optional<TraceHeader> parse_trace_header(const std::string& line) {
  const auto obj = flatjson::parse(line);
  if (!obj) return std::nullopt;
  const auto version = get_uint(*obj, "schema_version");
  const auto kind = get_string(*obj, "kind");
  // A trial line never carries schema_version, so its presence (without a
  // shard index) identifies the header.
  if (!version || !kind || find(*obj, "shard") != nullptr) return std::nullopt;
  TraceHeader header;
  header.schema_version = *version;
  header.kind = *kind;
  return header;
}

// ---- trial lines ----

std::string vm_trial_to_jsonl(u64 shard, u64 slot, const VmTrialResult& trial) {
  std::string out = "{";
  append_field(out, "shard", shard);
  out.push_back(',');
  append_field(out, "slot", slot);
  out.push_back(',');
  append_field(out, "workload", std::string_view(trial.workload));
  out.push_back(',');
  append_field(out, "outcome", to_string(trial.outcome));
  append_latency(out, "latency", trial.latency);
  out.push_back(',');
  append_field(out, "inject_index", trial.inject_index);
  out.push_back(',');
  append_field(out, "bit", static_cast<u64>(trial.bit));
  // Containment record, present only on aborted trials so the clean-path
  // byte stream is unchanged.
  if (!trial.abort_type.empty()) {
    out.push_back(',');
    append_field(out, "abort_type", std::string_view(trial.abort_type));
    out.push_back(',');
    append_field(out, "abort_msg", std::string_view(trial.abort_message));
  }
  // Fault-model record, present only for non-default models so default-model
  // traces keep their historical bytes.
  if (!trial.model.empty()) {
    out.push_back(',');
    append_field(out, "model", std::string_view(trial.model));
    if (!trial.extra_bits.empty()) {
      out.push_back(',');
      append_field(out, "extra_bits", trial.extra_bits);
    }
    if (!trial.upset) {
      out.push_back(',');
      append_field(out, "upset", false);
    }
  }
  out.push_back('}');
  return out;
}

std::optional<std::pair<u64, u64>> trial_line_key(const std::string& line) {
  const auto obj = flatjson::parse(line);
  if (!obj) return std::nullopt;
  const auto shard = get_uint(*obj, "shard");
  const auto slot = get_uint(*obj, "slot");
  // The trace header carries schema_version and no shard key, so it (and any
  // other non-trial line) falls out here.
  if (!shard || !slot) return std::nullopt;
  return std::make_pair(*shard, *slot);
}

std::optional<std::tuple<u64, u64, VmTrialResult>> vm_trial_from_jsonl(
    const std::string& line) {
  const auto obj = flatjson::parse(line);
  if (!obj) return std::nullopt;
  const auto shard = get_uint(*obj, "shard");
  const auto slot = get_uint(*obj, "slot");
  const auto workload = get_string(*obj, "workload");
  const auto outcome_name = get_string(*obj, "outcome");
  const auto inject_index = get_uint(*obj, "inject_index");
  const auto bit = get_uint(*obj, "bit");
  if (!shard || !slot || !workload || !outcome_name || !inject_index || !bit) {
    return std::nullopt;
  }
  const auto outcome = vm_outcome_from_string(*outcome_name);
  if (!outcome) return std::nullopt;

  VmTrialResult trial;
  trial.workload = *workload;
  trial.outcome = *outcome;
  trial.latency = get_latency(*obj, "latency");
  trial.inject_index = *inject_index;
  trial.bit = static_cast<u32>(*bit);
  trial.abort_type = get_string(*obj, "abort_type").value_or("");
  trial.abort_message = get_string(*obj, "abort_msg").value_or("");
  trial.model = get_string(*obj, "model").value_or("");
  if (const JsonValue* v = find(*obj, "extra_bits");
      v != nullptr && v->kind == JsonValue::Kind::kUintArray) {
    trial.extra_bits = v->array;
  }
  trial.upset = get_bool(*obj, "upset").value_or(true);
  return std::make_tuple(*shard, *slot, std::move(trial));
}

std::string uarch_trial_to_jsonl(u64 shard, u64 slot, const UarchTrialRecord& trial) {
  std::string out = "{";
  append_field(out, "shard", shard);
  out.push_back(',');
  append_field(out, "slot", slot);
  out.push_back(',');
  append_field(out, "workload", std::string_view(trial.workload));
  out.push_back(',');
  append_field(out, "field", static_cast<u64>(trial.bit.field));
  out.push_back(',');
  append_field(out, "entry", static_cast<u64>(trial.bit.entry));
  out.push_back(',');
  append_field(out, "bit", static_cast<u64>(trial.bit.bit));
  out.push_back(',');
  append_field(out, "field_name", std::string_view(trial.field_name));
  out.push_back(',');
  append_field(out, "storage", to_string(trial.storage));
  out.push_back(',');
  append_field(out, "protection", to_string(trial.protection));
  append_latency(out, "lat_exception", trial.lat_exception);
  append_latency(out, "lat_cfv", trial.lat_cfv);
  append_latency(out, "lat_hiconf", trial.lat_hiconf);
  append_latency(out, "lat_deadlock", trial.lat_deadlock);
  append_latency(out, "lat_illegal_flow", trial.lat_illegal_flow);
  append_latency(out, "lat_cache_burst", trial.lat_cache_burst);
  out.push_back(',');
  append_field(out, "trace_diverged", trial.trace_diverged);
  out.push_back(',');
  append_field(out, "arch_corrupt", trial.arch_corrupt_at_end);
  out.push_back(',');
  append_field(out, "uarch_equal", trial.uarch_state_equal);
  out.push_back(',');
  append_field(out, "live_diff", trial.live_state_diff);
  out.push_back(',');
  append_field(out, "end_status", static_cast<u64>(trial.end_status));
  // Containment record, present only on aborted trials so the clean-path
  // byte stream is unchanged.
  if (trial.aborted()) {
    out.push_back(',');
    append_field(out, "abort_type", std::string_view(trial.abort_type));
    out.push_back(',');
    append_field(out, "abort_msg", std::string_view(trial.abort_message));
    out.push_back(',');
    append_field(out, "abort_resource", trial.abort_resource);
  }
  // Fault-model record, present only for non-default models so default-model
  // traces keep their historical bytes.
  if (!trial.model.empty()) {
    out.push_back(',');
    append_field(out, "model", std::string_view(trial.model));
    if (!trial.extra_bits.empty()) {
      out.push_back(',');
      append_field(out, "extra_bits", trial.extra_bits);
    }
    if (!trial.upset) {
      out.push_back(',');
      append_field(out, "upset", false);
    }
  }
  out.push_back('}');
  return out;
}

std::optional<std::tuple<u64, u64, UarchTrialRecord>> uarch_trial_from_jsonl(
    const std::string& line) {
  const auto obj = flatjson::parse(line);
  if (!obj) return std::nullopt;
  const auto shard = get_uint(*obj, "shard");
  const auto slot = get_uint(*obj, "slot");
  const auto workload = get_string(*obj, "workload");
  const auto field = get_uint(*obj, "field");
  const auto entry = get_uint(*obj, "entry");
  const auto bit = get_uint(*obj, "bit");
  const auto field_name = get_string(*obj, "field_name");
  const auto storage_name = get_string(*obj, "storage");
  const auto protection_name = get_string(*obj, "protection");
  const auto trace_diverged = get_bool(*obj, "trace_diverged");
  const auto arch_corrupt = get_bool(*obj, "arch_corrupt");
  const auto uarch_equal = get_bool(*obj, "uarch_equal");
  const auto live_diff = get_bool(*obj, "live_diff");
  const auto end_status = get_uint(*obj, "end_status");
  if (!shard || !slot || !workload || !field || !entry || !bit || !field_name ||
      !storage_name || !protection_name || !trace_diverged || !arch_corrupt ||
      !uarch_equal || !live_diff || !end_status) {
    return std::nullopt;
  }
  const auto storage = storage_from_string(*storage_name);
  const auto protection = protection_from_string(*protection_name);
  if (!storage || !protection) return std::nullopt;

  UarchTrialRecord trial;
  trial.workload = *workload;
  trial.bit.field = static_cast<u32>(*field);
  trial.bit.entry = static_cast<u32>(*entry);
  trial.bit.bit = static_cast<u32>(*bit);
  trial.field_name = *field_name;
  trial.storage = *storage;
  trial.protection = *protection;
  trial.lat_exception = get_latency(*obj, "lat_exception");
  trial.lat_cfv = get_latency(*obj, "lat_cfv");
  trial.lat_hiconf = get_latency(*obj, "lat_hiconf");
  trial.lat_deadlock = get_latency(*obj, "lat_deadlock");
  trial.lat_illegal_flow = get_latency(*obj, "lat_illegal_flow");
  trial.lat_cache_burst = get_latency(*obj, "lat_cache_burst");
  trial.trace_diverged = *trace_diverged;
  trial.arch_corrupt_at_end = *arch_corrupt;
  trial.uarch_state_equal = *uarch_equal;
  trial.live_state_diff = *live_diff;
  trial.end_status = static_cast<uarch::Core::Status>(*end_status);
  trial.abort_type = get_string(*obj, "abort_type").value_or("");
  trial.abort_message = get_string(*obj, "abort_msg").value_or("");
  trial.abort_resource = get_bool(*obj, "abort_resource").value_or(false);
  trial.model = get_string(*obj, "model").value_or("");
  if (const JsonValue* v = find(*obj, "extra_bits");
      v != nullptr && v->kind == JsonValue::Kind::kUintArray) {
    trial.extra_bits = v->array;
  }
  trial.upset = get_bool(*obj, "upset").value_or(true);
  return std::make_tuple(*shard, *slot, std::move(trial));
}

namespace {

template <class Parsed, class ParseLine>
std::vector<Parsed> read_trials(std::istream& in, const ParseLine& parse_line) {
  std::vector<Parsed> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto parsed = parse_line(line);
    if (!parsed) {
      // Not a trial line: accept (and skip) a trace header this build
      // understands; reject a future-format trace with a clear message.
      if (const auto header = parse_trace_header(line)) {
        if (header->schema_version > kCampaignSchemaVersion) {
          throw std::runtime_error(
              "campaign trace has schema_version " +
              std::to_string(header->schema_version) +
              ", but this build only understands versions up to " +
              std::to_string(kCampaignSchemaVersion));
        }
        continue;
      }
      throw std::runtime_error("malformed campaign JSONL at line " +
                               std::to_string(line_no));
    }
    auto& [shard, slot, trial] = *parsed;
    out.push_back(Parsed{shard, slot, std::move(trial)});
  }
  return out;
}

}  // namespace

std::vector<ParsedVmTrial> read_vm_trials_jsonl(std::istream& in) {
  return read_trials<ParsedVmTrial>(in, vm_trial_from_jsonl);
}

std::vector<ParsedUarchTrial> read_uarch_trials_jsonl(std::istream& in) {
  return read_trials<ParsedUarchTrial>(in, uarch_trial_from_jsonl);
}

}  // namespace restore::faultinject
