#include "faultinject/orchestrator.hpp"

namespace restore::faultinject {

u64 shard_stream_seed(u64 root_seed, const std::string& workload, u64 ordinal) {
  u64 hash = fnv1a(workload, root_seed ^ 0x9e3779b97f4a7c15ULL);
  hash ^= ordinal + 0x517cc1b727220a95ULL;
  // splitmix finalizer: shard seeds for adjacent ordinals must not feed
  // correlated xoshiro states.
  u64 sm = hash;
  return splitmix64_next(sm);
}

u64 model_stream_seed(u64 shard_seed, u64 stream_tag) noexcept {
  // Same finalizer discipline as shard_stream_seed: decorrelate adjacent tags
  // before the mix feeds a xoshiro state.
  u64 sm = shard_seed ^ (stream_tag + 1) * 0xd6e8feb86659fd93ULL;
  return splitmix64_next(sm);
}

std::vector<ShardSpec> plan_shards(u64 root_seed,
                                   const std::vector<std::string>& workloads,
                                   u64 trials_per_workload, u64 shard_trials) {
  if (shard_trials == 0) shard_trials = kDefaultShardTrials;
  std::vector<ShardSpec> shards;
  u64 index = 0;
  for (const auto& workload : workloads) {
    u64 begin = 0, ordinal = 0;
    while (begin < trials_per_workload) {
      ShardSpec shard;
      shard.index = index++;
      shard.workload = workload;
      shard.trial_begin = begin;
      shard.trial_count = std::min(shard_trials, trials_per_workload - begin);
      shard.seed = shard_stream_seed(root_seed, workload, ordinal++);
      begin += shard.trial_count;
      shards.push_back(std::move(shard));
    }
  }
  return shards;
}

CampaignRunOptions campaign_options_from_cli(const CliArgs& args,
                                             std::size_t default_workers) {
  const CampaignCliOptions cli = resolve_campaign_cli(args);
  CampaignRunOptions opts;
  opts.workers = cli.workers ? static_cast<std::size_t>(*cli.workers) : default_workers;
  if (cli.shard_trials != 0) opts.shard_trials = cli.shard_trials;
  if (cli.out_jsonl) opts.out_jsonl = *cli.out_jsonl;
  opts.resume = cli.resume;
  opts.max_shards = cli.max_shards;
  opts.heartbeat_every_shards = cli.heartbeat_every;
  opts.shard_retries = cli.shard_retries;
  opts.retry_backoff_ms = cli.retry_backoff_ms;
  return opts;
}

}  // namespace restore::faultinject
