#include "faultinject/orchestrator.hpp"

namespace restore::faultinject {

u64 shard_stream_seed(u64 root_seed, const std::string& workload, u64 ordinal) {
  u64 hash = fnv1a(workload, root_seed ^ 0x9e3779b97f4a7c15ULL);
  hash ^= ordinal + 0x517cc1b727220a95ULL;
  // splitmix finalizer: shard seeds for adjacent ordinals must not feed
  // correlated xoshiro states.
  u64 sm = hash;
  return splitmix64_next(sm);
}

u64 model_stream_seed(u64 shard_seed, u64 stream_tag) noexcept {
  // Same finalizer discipline as shard_stream_seed: decorrelate adjacent tags
  // before the mix feeds a xoshiro state.
  u64 sm = shard_seed ^ (stream_tag + 1) * 0xd6e8feb86659fd93ULL;
  return splitmix64_next(sm);
}

std::vector<ShardSpec> plan_shards(u64 root_seed,
                                   const std::vector<std::string>& workloads,
                                   u64 trials_per_workload, u64 shard_trials) {
  if (shard_trials == 0) shard_trials = kDefaultShardTrials;
  std::vector<ShardSpec> shards;
  u64 index = 0;
  for (const auto& workload : workloads) {
    u64 begin = 0, ordinal = 0;
    while (begin < trials_per_workload) {
      ShardSpec shard;
      shard.index = index++;
      shard.workload = workload;
      shard.trial_begin = begin;
      shard.trial_count = std::min(shard_trials, trials_per_workload - begin);
      shard.seed = shard_stream_seed(root_seed, workload, ordinal++);
      begin += shard.trial_count;
      shards.push_back(std::move(shard));
    }
  }
  return shards;
}

CampaignRunOptions campaign_options_from_cli(const CliArgs& args,
                                             std::size_t default_workers) {
  const CampaignCliOptions cli = resolve_campaign_cli(args);
  CampaignRunOptions opts;
  opts.workers = cli.workers ? static_cast<std::size_t>(*cli.workers) : default_workers;
  if (cli.shard_trials != 0) opts.shard_trials = cli.shard_trials;
  if (cli.out_jsonl) opts.out_jsonl = *cli.out_jsonl;
  opts.resume = cli.resume;
  opts.max_shards = cli.max_shards;
  opts.heartbeat_every_shards = cli.heartbeat_every;
  opts.shard_retries = cli.shard_retries;
  opts.retry_backoff_ms = cli.retry_backoff_ms;
  return opts;
}

// ---- fleet lease accounting ----

ShardLeaseBook::ShardLeaseBook(std::size_t shard_count)
    : done_(shard_count, 0), quarantined_(shard_count, 0),
      attempts_(shard_count, 0) {
  pending_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) pending_.push_back(s);
}

void ShardLeaseBook::mark_done(u64 shard) {
  if (shard >= done_.size() || terminal(shard)) return;
  done_[shard] = 1;
  ++done_n_;
  ++terminal_n_;
}

void ShardLeaseBook::mark_quarantined(u64 shard) {
  if (shard >= done_.size() || terminal(shard)) return;
  quarantined_[shard] = 1;
  ++terminal_n_;
}

std::optional<ShardLeaseBook::Lease> ShardLeaseBook::acquire(
    const std::string& node, u64 now_ms, u64 steal_age_ms) {
  // Pending first (FIFO; terminal shards — marked done by resume or
  // quarantined while queued — are skipped on the way out).
  while (pending_head_ < pending_.size()) {
    const u64 shard = pending_[pending_head_++];
    if (terminal(shard)) continue;
    const u64 id = next_lease_++;
    leases_.emplace(id, Outstanding{shard, node, now_ms});
    ++attempts_[shard];
    return Lease{id, shard, /*stolen=*/false};
  }
  // Steal: the oldest outstanding lease (map order = issue order) that has
  // aged past steal_age_ms, belongs to a different node, and whose shard is
  // neither terminal nor already co-leased to this node.
  for (const auto& [id, lease] : leases_) {
    if (lease.node == node) continue;
    if (terminal(lease.shard)) continue;
    if (now_ms - lease.since_ms < steal_age_ms) continue;
    bool coleased = false;
    for (const auto& [other_id, other] : leases_) {
      if (other.shard == lease.shard && other.node == node) {
        coleased = true;
        break;
      }
    }
    if (coleased) continue;
    const u64 shard = lease.shard;
    const u64 new_id = next_lease_++;
    leases_.emplace(new_id, Outstanding{shard, node, now_ms});
    ++attempts_[shard];
    return Lease{new_id, shard, /*stolen=*/true};
  }
  return std::nullopt;
}

bool ShardLeaseBook::commit(u64 lease_id) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return false;  // stale id, already settled
  const u64 shard = it->second.shard;
  leases_.erase(it);
  if (terminal(shard)) return false;  // a duplicate lease committed first
  done_[shard] = 1;
  ++done_n_;
  ++terminal_n_;
  return true;
}

void ShardLeaseBook::release(u64 lease_id) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return;
  const u64 shard = it->second.shard;
  leases_.erase(it);
  if (terminal(shard)) return;
  for (const auto& [id, lease] : leases_) {
    if (lease.shard == shard) return;  // a stolen duplicate is still running
  }
  for (std::size_t i = pending_head_; i < pending_.size(); ++i) {
    if (pending_[i] == shard) return;  // already requeued
  }
  pending_.push_back(shard);
}

u64 ShardLeaseBook::attempts(u64 shard) const noexcept {
  return shard < attempts_.size() ? attempts_[shard] : 0;
}

bool ShardLeaseBook::done(u64 shard) const noexcept {
  return shard < done_.size() && done_[shard] != 0;
}

bool ShardLeaseBook::all_terminal() const noexcept {
  return terminal_n_ == done_.size();
}

}  // namespace restore::faultinject
