#include "faultinject/export.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "faultinject/campaign_io.hpp"

namespace restore::faultinject {

namespace {

void latency_cell(std::ostream& out, u64 latency) {
  if (latency != kNever) out << latency;
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

// Split one CSV row (none of our columns are quoted or contain commas).
std::vector<std::string> split_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

u64 parse_latency_cell(const std::string& cell) {
  return cell.empty() ? kNever : std::stoull(cell);
}

// extra_bits cells hold the whole vector semicolon-separated ("3;17"; empty
// cell = no extra bits), keeping the row a single unquoted CSV record.
void extra_bits_cell(std::ostream& out, const std::vector<u64>& bits) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i > 0) out << ';';
    out << bits[i];
  }
}

std::vector<u64> parse_extra_bits_cell(const std::string& cell) {
  std::vector<u64> bits;
  std::string value;
  std::istringstream in(cell);
  while (std::getline(in, value, ';')) bits.push_back(std::stoull(value));
  return bits;
}

bool parse_flag_cell(const std::string& cell, std::size_t row) {
  if (cell == "0") return false;
  if (cell == "1") return true;
  throw std::runtime_error("bad flag cell in trial CSV row " + std::to_string(row));
}

[[noreturn]] void bad_row(const char* what, std::size_t row) {
  throw std::runtime_error(std::string(what) + " in trial CSV row " +
                           std::to_string(row));
}

}  // namespace

void write_uarch_trials_csv(std::ostream& out,
                            const std::vector<UarchTrialRecord>& trials) {
  out << "workload,model,field,storage,protection,lat_exception,lat_cfv,lat_hiconf,"
         "lat_deadlock,lat_illegal_flow,lat_cache_burst,trace_diverged,"
         "arch_corrupt,uarch_equal,live_diff,end_status,extra_bits,upset\n";
  for (const auto& t : trials) {
    out << t.workload << ',' << (t.model.empty() ? "single" : t.model) << ','
        << t.field_name << ','
        << (t.storage == uarch::StorageClass::kLatch ? "latch" : "sram") << ',';
    switch (t.protection) {
      case uarch::LhfProtection::kNone: out << "none"; break;
      case uarch::LhfProtection::kParity: out << "parity"; break;
      case uarch::LhfProtection::kEcc: out << "ecc"; break;
    }
    out << ',';
    latency_cell(out, t.lat_exception);
    out << ',';
    latency_cell(out, t.lat_cfv);
    out << ',';
    latency_cell(out, t.lat_hiconf);
    out << ',';
    latency_cell(out, t.lat_deadlock);
    out << ',';
    latency_cell(out, t.lat_illegal_flow);
    out << ',';
    latency_cell(out, t.lat_cache_burst);
    out << ',' << (t.trace_diverged ? 1 : 0) << ',' << (t.arch_corrupt_at_end ? 1 : 0)
        << ',' << (t.uarch_state_equal ? 1 : 0) << ',' << (t.live_state_diff ? 1 : 0)
        << ',' << static_cast<int>(t.end_status) << ',';
    extra_bits_cell(out, t.extra_bits);
    out << ',' << (t.upset ? 1 : 0) << '\n';
  }
}

void write_vm_trials_csv(std::ostream& out,
                         const std::vector<VmTrialResult>& trials) {
  out << "workload,model,outcome,latency,inject_index,bit,extra_bits,upset\n";
  for (const auto& t : trials) {
    out << t.workload << ',' << (t.model.empty() ? "single" : t.model) << ','
        << to_string(t.outcome) << ',';
    latency_cell(out, t.latency);
    out << ',' << t.inject_index << ',' << t.bit << ',';
    extra_bits_cell(out, t.extra_bits);
    out << ',' << (t.upset ? 1 : 0) << '\n';
  }
}

void write_category_series_csv(std::ostream& out,
                               const std::vector<UarchTrialRecord>& trials,
                               DetectorModel detector, ProtectionModel protection) {
  const auto categories = {UarchOutcome::kMasked,   UarchOutcome::kOther,
                           UarchOutcome::kLatent,   UarchOutcome::kSdc,
                           UarchOutcome::kCfv,      UarchOutcome::kException,
                           UarchOutcome::kDeadlock};
  out << "interval";
  for (const auto category : categories) out << ',' << to_string(category);
  out << '\n';
  for (const u64 interval : checkpoint_interval_sweep()) {
    const auto shares = category_shares(trials, detector, protection, interval);
    out << interval;
    for (const auto category : categories) {
      const auto it = shares.find(category);
      out << ',' << (it == shares.end() ? 0.0 : it->second);
    }
    out << '\n';
  }
}

std::vector<UarchTrialRecord> read_uarch_trials_csv(std::istream& in) {
  std::vector<UarchTrialRecord> trials;
  std::string line;
  std::size_t row = 0;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    if (!header_skipped) {
      header_skipped = true;
      continue;
    }
    const auto cells = split_row(line);
    // 18 columns since the extra_bits/upset columns were added; 16-column
    // files predate them (implicitly single-bit, upset), 15-column files also
    // predate the model column. All three widths keep reading.
    if (cells.size() != 15 && cells.size() != 16 && cells.size() != 18) {
      bad_row("wrong column count", row);
    }
    const std::size_t off = cells.size() >= 16 ? 1 : 0;
    UarchTrialRecord t;
    t.workload = cells[0];
    if (off != 0) t.model = cells[1] == "single" ? "" : cells[1];
    t.field_name = cells[1 + off];
    const auto storage = storage_from_string(cells[2 + off]);
    const auto protection = protection_from_string(cells[3 + off]);
    if (!storage || !protection) bad_row("bad storage/protection", row);
    t.storage = *storage;
    t.protection = *protection;
    t.lat_exception = parse_latency_cell(cells[4 + off]);
    t.lat_cfv = parse_latency_cell(cells[5 + off]);
    t.lat_hiconf = parse_latency_cell(cells[6 + off]);
    t.lat_deadlock = parse_latency_cell(cells[7 + off]);
    t.lat_illegal_flow = parse_latency_cell(cells[8 + off]);
    t.lat_cache_burst = parse_latency_cell(cells[9 + off]);
    t.trace_diverged = parse_flag_cell(cells[10 + off], row);
    t.arch_corrupt_at_end = parse_flag_cell(cells[11 + off], row);
    t.uarch_state_equal = parse_flag_cell(cells[12 + off], row);
    t.live_state_diff = parse_flag_cell(cells[13 + off], row);
    t.end_status = static_cast<uarch::Core::Status>(std::stoi(cells[14 + off]));
    if (cells.size() == 18) {
      t.extra_bits = parse_extra_bits_cell(cells[16]);
      t.upset = parse_flag_cell(cells[17], row);
    }
    trials.push_back(std::move(t));
  }
  return trials;
}

std::vector<VmTrialResult> read_vm_trials_csv(std::istream& in) {
  std::vector<VmTrialResult> trials;
  std::string line;
  std::size_t row = 0;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    if (!header_skipped) {
      header_skipped = true;
      continue;
    }
    const auto cells = split_row(line);
    // 8 columns since the extra_bits/upset columns were added; 6-column files
    // predate them (implicitly single-bit, upset), 5-column files also
    // predate the model column. All three widths keep reading.
    if (cells.size() != 5 && cells.size() != 6 && cells.size() != 8) {
      bad_row("wrong column count", row);
    }
    const std::size_t off = cells.size() >= 6 ? 1 : 0;
    VmTrialResult t;
    t.workload = cells[0];
    if (off != 0) t.model = cells[1] == "single" ? "" : cells[1];
    const auto outcome = vm_outcome_from_string(cells[1 + off]);
    if (!outcome) bad_row("bad outcome", row);
    t.outcome = *outcome;
    t.latency = parse_latency_cell(cells[2 + off]);
    t.inject_index = std::stoull(cells[3 + off]);
    t.bit = static_cast<u32>(std::stoul(cells[4 + off]));
    if (cells.size() == 8) {
      t.extra_bits = parse_extra_bits_cell(cells[6]);
      t.upset = parse_flag_cell(cells[7], row);
    }
    trials.push_back(std::move(t));
  }
  return trials;
}

namespace {

// (model, outcome) -> count, flattened into sorted rows. std::map keys are
// ordered, so the row order is byte-stable for a given trial multiset.
std::vector<ModelBreakdownRow> flatten_breakdown(
    const std::map<std::pair<std::string, std::string>, u64>& counts) {
  std::vector<ModelBreakdownRow> rows;
  rows.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    rows.push_back({key.first, key.second, count});
  }
  return rows;
}

}  // namespace

std::vector<ModelBreakdownRow> model_breakdown(
    const std::vector<VmTrialResult>& trials) {
  std::map<std::pair<std::string, std::string>, u64> counts;
  for (const auto& t : trials) {
    const std::string model = t.model.empty() ? "single" : t.model;
    ++counts[{model, std::string(to_string(t.outcome))}];
  }
  return flatten_breakdown(counts);
}

std::vector<ModelBreakdownRow> model_breakdown(
    const std::vector<UarchTrialRecord>& trials, DetectorModel detector,
    ProtectionModel protection, u64 interval) {
  std::map<std::pair<std::string, std::string>, u64> counts;
  for (const auto& t : trials) {
    const std::string model = t.model.empty() ? "single" : t.model;
    const auto outcome = classify_trial(t, detector, protection, interval);
    ++counts[{model, std::string(to_string(outcome))}];
  }
  return flatten_breakdown(counts);
}

void write_model_breakdown_csv(std::ostream& out,
                               const std::vector<ModelBreakdownRow>& rows) {
  out << "model,outcome,count\n";
  for (const auto& row : rows) {
    out << row.model << ',' << row.outcome << ',' << row.count << '\n';
  }
}

std::vector<ModelBreakdownRow> read_model_breakdown_csv(std::istream& in) {
  std::vector<ModelBreakdownRow> rows;
  std::string line;
  std::size_t row_no = 0;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    ++row_no;
    if (line.empty()) continue;
    if (!header_skipped) {
      header_skipped = true;
      continue;
    }
    const auto cells = split_row(line);
    if (cells.size() != 3) bad_row("wrong column count", row_no);
    rows.push_back({cells[0], cells[1], std::stoull(cells[2])});
  }
  return rows;
}

void write_shard_stats_csv(std::ostream& out, const std::vector<ShardStats>& shards) {
  out << "shard,workload,trials,wall_ms,trials_per_sec,resumed\n";
  for (const auto& shard : shards) {
    const double rate =
        shard.wall_ms > 0 ? 1000.0 * static_cast<double>(shard.trials) / shard.wall_ms
                          : 0.0;
    char wall[32], per_sec[32];
    std::snprintf(wall, sizeof wall, "%.3f", shard.wall_ms);
    std::snprintf(per_sec, sizeof per_sec, "%.1f", rate);
    out << shard.shard << ',' << shard.workload << ',' << shard.trials << ','
        << wall << ',' << per_sec << ',' << (shard.resumed ? 1 : 0) << '\n';
  }
}

void write_uarch_trials_csv(const std::string& path,
                            const std::vector<UarchTrialRecord>& trials) {
  auto out = open_or_throw(path);
  write_uarch_trials_csv(out, trials);
}

void write_vm_trials_csv(const std::string& path,
                         const std::vector<VmTrialResult>& trials) {
  auto out = open_or_throw(path);
  write_vm_trials_csv(out, trials);
}

void write_shard_stats_csv(const std::string& path,
                           const std::vector<ShardStats>& shards) {
  auto out = open_or_throw(path);
  write_shard_stats_csv(out, shards);
}

}  // namespace restore::faultinject
