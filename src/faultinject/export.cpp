#include "faultinject/export.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace restore::faultinject {

namespace {

void latency_cell(std::ostream& out, u64 latency) {
  if (latency != kNever) out << latency;
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

}  // namespace

void write_uarch_trials_csv(std::ostream& out,
                            const std::vector<UarchTrialRecord>& trials) {
  out << "workload,field,storage,protection,lat_exception,lat_cfv,lat_hiconf,"
         "lat_deadlock,lat_illegal_flow,lat_cache_burst,trace_diverged,"
         "arch_corrupt,uarch_equal,live_diff,end_status\n";
  for (const auto& t : trials) {
    out << t.workload << ',' << t.field_name << ','
        << (t.storage == uarch::StorageClass::kLatch ? "latch" : "sram") << ',';
    switch (t.protection) {
      case uarch::LhfProtection::kNone: out << "none"; break;
      case uarch::LhfProtection::kParity: out << "parity"; break;
      case uarch::LhfProtection::kEcc: out << "ecc"; break;
    }
    out << ',';
    latency_cell(out, t.lat_exception);
    out << ',';
    latency_cell(out, t.lat_cfv);
    out << ',';
    latency_cell(out, t.lat_hiconf);
    out << ',';
    latency_cell(out, t.lat_deadlock);
    out << ',';
    latency_cell(out, t.lat_illegal_flow);
    out << ',';
    latency_cell(out, t.lat_cache_burst);
    out << ',' << (t.trace_diverged ? 1 : 0) << ',' << (t.arch_corrupt_at_end ? 1 : 0)
        << ',' << (t.uarch_state_equal ? 1 : 0) << ',' << (t.live_state_diff ? 1 : 0)
        << ',' << static_cast<int>(t.end_status) << '\n';
  }
}

void write_vm_trials_csv(std::ostream& out,
                         const std::vector<VmTrialResult>& trials) {
  out << "workload,outcome,latency,inject_index,bit\n";
  for (const auto& t : trials) {
    out << t.workload << ',' << to_string(t.outcome) << ',';
    latency_cell(out, t.latency);
    out << ',' << t.inject_index << ',' << t.bit << '\n';
  }
}

void write_category_series_csv(std::ostream& out,
                               const std::vector<UarchTrialRecord>& trials,
                               DetectorModel detector, ProtectionModel protection) {
  const auto categories = {UarchOutcome::kMasked,   UarchOutcome::kOther,
                           UarchOutcome::kLatent,   UarchOutcome::kSdc,
                           UarchOutcome::kCfv,      UarchOutcome::kException,
                           UarchOutcome::kDeadlock};
  out << "interval";
  for (const auto category : categories) out << ',' << to_string(category);
  out << '\n';
  for (const u64 interval : checkpoint_interval_sweep()) {
    const auto shares = category_shares(trials, detector, protection, interval);
    out << interval;
    for (const auto category : categories) {
      const auto it = shares.find(category);
      out << ',' << (it == shares.end() ? 0.0 : it->second);
    }
    out << '\n';
  }
}

void write_uarch_trials_csv(const std::string& path,
                            const std::vector<UarchTrialRecord>& trials) {
  auto out = open_or_throw(path);
  write_uarch_trials_csv(out, trials);
}

void write_vm_trials_csv(const std::string& path,
                         const std::vector<VmTrialResult>& trials) {
  auto out = open_or_throw(path);
  write_vm_trials_csv(out, trials);
}

}  // namespace restore::faultinject
