#include "faultinject/progress.hpp"

namespace restore::faultinject {

ProgressSink::ProgressSink(std::FILE* stream, CampaignEventCallback callback)
    : stream_(stream), callback_(std::move(callback)) {}

void ProgressSink::emit(const CampaignEvent& event) {
  MutexLock lock(mutex_);
  if (!event.text.empty() && stream_ != nullptr) {
    std::fwrite(event.text.data(), 1, event.text.size(), stream_);
    std::fputc('\n', stream_);
    std::fflush(stream_);
  }
  if (callback_) callback_(event);
}

}  // namespace restore::faultinject
