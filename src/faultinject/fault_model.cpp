#include "faultinject/fault_model.hpp"

#include <cmath>
#include <stdexcept>

namespace restore::faultinject {

namespace {

using uarch::BitRef;
using uarch::StateField;
using uarch::StateRegistry;
using uarch::StorageClass;

constexpr std::string_view kModelNames[] = {"single", "multi",    "burst",
                                            "set",    "targeted", "rate"};

// Field-name prefixes of the load/store queue structures in the audited state
// manifest; targeted injection at the uarch level samples only these.
std::string_view target_prefix(std::string_view target) noexcept {
  return target == "store" ? "stq." : "ldq.";
}

bool field_matches_target(const StateField& field, std::string_view prefix,
                          bool latches_only) noexcept {
  if (latches_only && field.storage != StorageClass::kLatch) return false;
  return std::string_view(field.name).substr(0, prefix.size()) == prefix;
}

}  // namespace

std::string_view to_string(FaultModel model) noexcept {
  const auto index = static_cast<std::size_t>(model);
  return index < std::size(kModelNames) ? kModelNames[index] : "?";
}

std::optional<FaultModel> fault_model_from_string(std::string_view name) noexcept {
  for (std::size_t i = 0; i < std::size(kModelNames); ++i) {
    if (name == kModelNames[i]) return static_cast<FaultModel>(i);
  }
  return std::nullopt;
}

bool is_default_fault_model(const FaultModelConfig& config) noexcept {
  return config.model == FaultModel::kSingleBit;
}

std::string fault_model_identity_key(const FaultModelConfig& config) {
  std::string key(to_string(config.model));
  switch (config.model) {
    case FaultModel::kMultiBitAdjacent:
      key += ",k=" + std::to_string(config.multi_bits);
      break;
    case FaultModel::kBurst:
      key += ",entries=" + std::to_string(config.burst_entries);
      break;
    case FaultModel::kTargeted:
      key += ",target=" + config.target;
      break;
    case FaultModel::kRateDriven:
      key += ",vdd=" + std::to_string(config.vdd_mv);
      key += ",freq=" + std::to_string(config.freq_mhz);
      key += ",ppm=" + std::to_string(config.upset_ppm);
      break;
    default:
      break;
  }
  return key;
}

double upset_probability(const FaultModelConfig& config) noexcept {
  if (config.freq_mhz == 0) return 1.0;
  const double nominal = static_cast<double>(config.upset_ppm) * 1e-6;
  const double freq_scale = 1000.0 / static_cast<double>(config.freq_mhz);
  const double vdd_scale =
      std::exp2((1000.0 - static_cast<double>(config.vdd_mv)) / 250.0);
  const double p = nominal * freq_scale * vdd_scale;
  return p < 1.0 ? p : 1.0;
}

void validate_fault_model(const FaultModelConfig& config, bool vm_campaign) {
  switch (config.model) {
    case FaultModel::kSingleBit:
      return;
    case FaultModel::kMultiBitAdjacent:
      if (config.multi_bits < 2 || config.multi_bits > 64) {
        throw std::invalid_argument(
            "multi-bit fault model needs 2..64 adjacent bits (--fault-bits)");
      }
      return;
    case FaultModel::kBurst:
      if (vm_campaign) {
        throw std::invalid_argument(
            "burst upsets need SRAM geometry; the architectural (vm) campaign "
            "has none — use the uarch campaign");
      }
      if (config.burst_entries < 2) {
        throw std::invalid_argument(
            "burst fault model needs >= 2 consecutive entries (--burst-entries)");
      }
      return;
    case FaultModel::kSet:
      if (vm_campaign) {
        throw std::invalid_argument(
            "SET transients are a latch-level model; the architectural (vm) "
            "campaign has no cycle semantics — use the uarch campaign");
      }
      return;
    case FaultModel::kTargeted:
      if (config.target != "load" && config.target != "store") {
        throw std::invalid_argument(
            "targeted fault model needs --fault-target load|store, got: " +
            config.target);
      }
      return;
    case FaultModel::kRateDriven:
      if (config.freq_mhz == 0 || config.vdd_mv == 0) {
        throw std::invalid_argument(
            "rate-driven fault model needs a nonzero operating point "
            "(--vdd-mv, --freq-mhz)");
      }
      return;
  }
  throw std::invalid_argument("unknown fault model");
}

InjectionPlan sample_injection_plan(const FaultModelConfig& config,
                                    const StateRegistry& registry,
                                    bool latches_only, Rng& model_rng) {
  const std::optional<StorageClass> filter =
      latches_only ? std::optional<StorageClass>(StorageClass::kLatch)
                   : std::nullopt;
  InjectionPlan plan;
  switch (config.model) {
    case FaultModel::kSingleBit:
      plan.bits.push_back(registry.sample(model_rng, filter));
      return plan;

    case FaultModel::kMultiBitAdjacent: {
      const u32 k = config.multi_bits;
      bool feasible = false;
      for (const auto& field : registry.fields()) {
        if (latches_only && field.storage != StorageClass::kLatch) continue;
        if (field.bits_per_entry >= k) {
          feasible = true;
          break;
        }
      }
      if (!feasible) {
        throw std::invalid_argument("no eligible field is >= " +
                                    std::to_string(k) + " bits wide");
      }
      // Rejection-sample a base bit until its field can hold k adjacent bits,
      // then anchor the run so it stays inside the entry. Every plan flips
      // exactly k bits of one entry.
      BitRef base;
      do {
        base = registry.sample(model_rng, filter);
      } while (registry.field(base).bits_per_entry < k);
      const u32 start = std::min(base.bit, registry.field(base).bits_per_entry - k);
      for (u32 i = 0; i < k; ++i) {
        plan.bits.push_back(BitRef{base.field, base.entry, start + i});
      }
      return plan;
    }

    case FaultModel::kBurst: {
      const u32 n = config.burst_entries;
      bool feasible = false;
      for (const auto& field : registry.fields()) {
        if (field.storage == StorageClass::kSram && field.entries >= n) {
          feasible = true;
          break;
        }
      }
      if (!feasible) {
        throw std::invalid_argument("no SRAM array has >= " +
                                    std::to_string(n) + " entries");
      }
      // Column upset: the same bit position across n consecutive entries of
      // one SRAM array (the physical adjacency of a column strike).
      BitRef base;
      do {
        base = registry.sample(model_rng, StorageClass::kSram);
      } while (registry.field(base).entries < n);
      const u32 start = std::min(base.entry, registry.field(base).entries - n);
      for (u32 i = 0; i < n; ++i) {
        plan.bits.push_back(BitRef{base.field, start + i, base.bit});
      }
      return plan;
    }

    case FaultModel::kSet:
      // A transient lands on a latch (the captured output of a combinational
      // cone); SRAM cells hold their upsets, which is the burst/single model.
      plan.bits.push_back(registry.sample(model_rng, StorageClass::kLatch));
      plan.transient = true;
      return plan;

    case FaultModel::kTargeted: {
      const std::string_view prefix = target_prefix(config.target);
      u64 total = 0;
      for (const auto& field : registry.fields()) {
        if (field_matches_target(field, prefix, latches_only)) {
          total += field.total_bits();
        }
      }
      if (total == 0) {
        throw std::invalid_argument("no eligible state matches fault target: " +
                                    config.target);
      }
      u64 pick = model_rng.below(total);
      for (u32 f = 0; f < registry.fields().size(); ++f) {
        const auto& field = registry.fields()[f];
        if (!field_matches_target(field, prefix, latches_only)) continue;
        if (pick >= field.total_bits()) {
          pick -= field.total_bits();
          continue;
        }
        plan.bits.push_back(BitRef{f, static_cast<u32>(pick / field.bits_per_entry),
                                   static_cast<u32>(pick % field.bits_per_entry)});
        return plan;
      }
      throw std::logic_error("targeted sample walked past the state space");
    }

    case FaultModel::kRateDriven:
      plan.bits.push_back(registry.sample(model_rng, filter));
      plan.upset = model_rng.chance(upset_probability(config));
      return plan;
  }
  throw std::invalid_argument("unknown fault model");
}

u64 pack_bit_ref(const BitRef& ref) noexcept {
  return (static_cast<u64>(ref.field) << 42) | (static_cast<u64>(ref.entry) << 21) |
         static_cast<u64>(ref.bit);
}

BitRef unpack_bit_ref(u64 packed) noexcept {
  BitRef ref;
  ref.field = static_cast<u32>(packed >> 42);
  ref.entry = static_cast<u32>((packed >> 21) & 0x1FFFFF);
  ref.bit = static_cast<u32>(packed & 0x1FFFFF);
  return ref;
}

FaultModelConfig fault_model_from_cli(const CliArgs& args) {
  FaultModelConfig config;
  if (const auto name = resolve_fault_model_name(args)) {
    const auto model = fault_model_from_string(*name);
    if (!model) {
      throw std::invalid_argument(
          "unknown fault model (want single|multi|burst|set|targeted|rate): " +
          *name);
    }
    config.model = *model;
  }
  config.multi_bits = static_cast<u32>(args.value_u64("fault-bits", config.multi_bits));
  config.burst_entries =
      static_cast<u32>(args.value_u64("burst-entries", config.burst_entries));
  if (const auto target = args.value("fault-target")) config.target = *target;
  config.vdd_mv = args.value_u64("vdd-mv", config.vdd_mv);
  config.freq_mhz = args.value_u64("freq-mhz", config.freq_mhz);
  config.upset_ppm = args.value_u64("upset-ppm", config.upset_ppm);
  return config;
}

}  // namespace restore::faultinject
