// Process-wide switches for the trial inner-loop fast paths.
//
// Every toggle here is a pure optimisation: campaign traces are byte-for-byte
// identical with any combination of settings, at any worker count
// (test_trial_speed enforces this). Because results never depend on them,
// these knobs are deliberately NOT part of any campaign config hash and have
// no CLI flag — callers that want a slow reference run (benchmarks, the
// equivalence tests) set them programmatically.
#pragma once

#include <cstddef>
#include <optional>

#include "common/types.hpp"

namespace restore::faultinject {

struct TrialSpeedConfig {
  // Memoize golden continuations (monitor-window trace + end state +
  // convergence checkpoints) in a bounded LRU shared across shards and
  // campaigns, keyed by (core config, workload, injection cycle, window).
  bool continuation_cache = true;

  // Reuse one persistent machine image per shard, restored in place from the
  // injection-point snapshot, instead of constructing/destroying a fresh
  // copy for every trial.
  bool trial_arena = true;

  // End a trial early once the faulty core is bit-identical to a golden
  // checkpoint at the same cycle offset; the rest of the record is derived
  // from golden data. Automatically disabled for budget-limited trials,
  // whose abort behaviour depends on executing the real cycles.
  bool convergence_shortcut = true;

  // Max continuations retained across all cache shards. Each continuation
  // holds ~40 checkpoint snapshots (a few MB with shared COW pages); evicted
  // entries are rebuilt on demand, so a tiny capacity costs time, never
  // correctness.
  std::size_t continuation_cache_capacity = 32;
};

// Current process-wide configuration (copy). Thread-safe.
TrialSpeedConfig trial_speed() noexcept;

// Replace the process-wide configuration. Call between campaigns, not while
// one is running: shards snapshot the config when they start.
void set_trial_speed(const TrialSpeedConfig& config) noexcept;

struct ContinuationCacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
};

// Observability for the golden-continuation cache (defined next to the cache
// in uarch_campaign.cpp).
ContinuationCacheStats continuation_cache_stats() noexcept;
void clear_continuation_cache() noexcept;

// Reusable per-shard trial image: `reset_to` copy-assigns the injection-point
// snapshot into one persistent machine instead of constructing and destroying
// a fresh copy per trial, so heap blocks (page tables, output buffers, replay
// hints) are recycled across the shard's trials. Copy-assignment and
// copy-construction produce equal values by definition, so trial results are
// unchanged.
template <typename MachineT>
class TrialArena {
 public:
  MachineT& reset_to(const MachineT& source) {
    if (image_.has_value()) {
      *image_ = source;
    } else {
      image_.emplace(source);
    }
    return *image_;
  }

  void clear() noexcept { image_.reset(); }

 private:
  std::optional<MachineT> image_;
};

}  // namespace restore::faultinject
