// Architectural (VM-level) fault-injection campaign — the paper's §3.1 study
// (Figure 2). The fault model is "a single bit flip in the result of a
// randomly chosen instruction"; the trial watches the subsequent retirement
// stream for symptoms and classifies per Table 1.
#pragma once

#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "faultinject/fault_model.hpp"
#include "faultinject/outcome.hpp"
#include "workloads/workloads.hpp"

namespace restore::faultinject {

// Architectural fault models.
enum class VmFaultModel : u8 {
  // The paper's §3.1 model: flip one bit of a randomly chosen instruction's
  // result, right after it is produced.
  kResultBit,
  // The related-work model (Gu et al., rePLay §6): flip one bit of a randomly
  // chosen *live architectural register* at a random point in time,
  // independent of which instruction produced it.
  kRegisterBit,
};

struct VmCampaignConfig {
  u64 seed = 0x5EED;
  VmFaultModel model = VmFaultModel::kResultBit;
  // Trials per workload (paper: ~1000).
  u64 trials_per_workload = 150;
  // Restrict flips to the low 32 bits of each 64-bit result (the §3.1
  // follow-up study probing virtual-address-space sensitivity).
  bool low32_only = false;
  // Extra instructions the faulty run may execute beyond the golden length
  // before the trial is cut off (runaway protection).
  u64 overrun_budget = 50'000;
  // Workload subset; empty = all seven.
  std::vector<std::string> workloads;
  // Deterministic per-trial resource budget (containment layer). The default
  // (all zero = unlimited) keeps the campaign identity hash — and therefore
  // resume compatibility — of pre-budget configs unchanged.
  ResourceBudget trial_budget;
  // Expanded fault model (fault_model.hpp). Only multi/targeted/rate make
  // sense architecturally (burst and SET need microarchitectural state and
  // are rejected by validate_fault_model), and a non-default model requires
  // `model == kResultBit`. The default keeps the campaign byte-identical to
  // its pre-fault-model behaviour; non-default models draw their plans from a
  // per-shard substream and contribute to config_hash.
  FaultModelConfig fault_model;
};

struct VmTrialResult {
  std::string workload;
  VmOutcome outcome = VmOutcome::kMasked;
  // Instructions from injection to the first symptom of the winning
  // category; kNever for masked (and for `register` when the corruption is
  // only visible in the final register file).
  u64 latency = kNever;
  u64 inject_index = 0;  // dynamic instruction index of the corrupted result
  u32 bit = 0;           // flipped bit position
  // Containment record, set only for sim-abort / resource-exhausted trials:
  // the deterministic exception-type tag and its message.
  std::string abort_type;
  std::string abort_message;

  // Fault-model record, populated only for non-default models so default
  // traces keep their historical bytes: the model token, every extra flipped
  // bit position beyond `bit` (multi-bit upsets), and — for the rate-driven
  // model — whether the trial upset at all (false = recorded masked without
  // executing the trial machine).
  std::string model;
  std::vector<u64> extra_bits;
  bool upset = true;
};

struct VmCampaignResult {
  std::vector<VmTrialResult> trials;

  // Fraction of trials in `outcome` with latency <= max_latency.
  double fraction(VmOutcome outcome, u64 max_latency = kNever) const;
  std::size_t count(VmOutcome outcome, u64 max_latency = kNever) const;
};

// Identity hash over every config field (campaign kind included); a resume
// manifest written under one hash refuses to continue under another.
u64 config_hash(const VmCampaignConfig& config);

// Run the campaign. Deterministic for a given config (and, for the
// orchestrated overload, a given shard size): trials are sampled from
// independent per-shard RNG streams, so the result is byte-identical for any
// worker count and for interrupted-then-resumed runs.
VmCampaignResult run_vm_campaign(const VmCampaignConfig& config);

struct CampaignRunOptions;  // orchestrator.hpp
struct CampaignTelemetry;
struct ShardSpec;
VmCampaignResult run_vm_campaign(const VmCampaignConfig& config,
                                 const CampaignRunOptions& options,
                                 CampaignTelemetry* telemetry = nullptr);

// Run one planned shard (exposed for tests and custom supervisors): samples
// the shard's trials from its own RNG stream and executes them inside the
// trial containment boundary, so every returned record has a classified
// outcome even when the simulator throws mid-trial.
std::vector<VmTrialResult> run_vm_shard(const VmCampaignConfig& config,
                                        const ShardSpec& shard);

// Run a single trial (exposed for tests): inject into dynamic instruction
// `inject_index` (must produce a register result), flipping `bit`.
VmTrialResult run_vm_trial(const workloads::Workload& workload, u64 inject_index,
                           u32 bit, u64 overrun_budget = 50'000);

// Register-model single trial: after dynamic instruction `inject_index`
// executes, flip bit `bit` of architectural register `reg`.
VmTrialResult run_vm_register_trial(const workloads::Workload& workload,
                                    u64 inject_index, u8 reg, u32 bit,
                                    u64 overrun_budget = 50'000);

}  // namespace restore::faultinject
