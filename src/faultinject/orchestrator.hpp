// Sharded campaign orchestration.
//
// A campaign is split into deterministic shards: contiguous trial ranges of
// one workload, each sampling its randomness from an independent RNG stream
// derived from (root seed, workload name, shard ordinal). Shard results
// therefore depend only on the campaign config and shard geometry — not on
// the worker count, the order shards happen to finish in, or whether the
// campaign was interrupted and resumed — so the assembled trial list (and
// anything exported from it) is byte-identical across all of those.
//
// With an output path set, the runner streams each completed shard to a
// JSONL trace and records it in a sidecar manifest; `resume` trusts the
// manifest, reloads the completed shards from the trace and only runs the
// rest. On clean completion the trace is rewritten in canonical
// (shard, slot) order, so complete traces are byte-identical too.
//
// Supervision: a shard whose runner throws is retried with bounded
// exponential backoff (shards are deterministic, so only transient *host*
// failures — bad_alloc, I/O — can succeed on retry). A shard that keeps
// failing is quarantined: recorded in the manifest with its error, reported
// in telemetry, and skipped while every other shard completes. Quarantined
// shards are not marked completed, so a later --resume re-attempts exactly
// them. A stop flag (see common/shutdown.hpp) requests graceful shutdown:
// no new shard starts, in-flight shards finish and are flushed to the
// trace/manifest, and --resume continues from that consistent pair.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/campaign_io.hpp"
#include "faultinject/progress.hpp"

namespace restore::faultinject {

// Default trials per shard: small enough that a default 150-trial workload
// splits into several resumable units, large enough that per-shard golden
// warm-up stays amortized.
inline constexpr u64 kDefaultShardTrials = 32;

struct CampaignRunOptions {
  std::size_t workers = 0;   // 0 = run shards inline on the calling thread
  u64 shard_trials = kDefaultShardTrials;  // part of the campaign identity
  std::string out_jsonl;     // empty = in-memory only (no files)
  bool resume = false;       // reuse completed shards from the manifest
  u64 max_shards = 0;        // stop after N newly-run shards (0 = run all);
                             // the campaign-replay "kill after k shards" hook
  u64 heartbeat_every_shards = 0;  // 0 = no heartbeat
  std::FILE* heartbeat_stream = nullptr;  // default stderr
  // Shard supervision: a throwing shard is re-run up to `shard_retries`
  // times (attempt k sleeps retry_backoff_ms << (k-1) first), then
  // quarantined. Retries re-run the same deterministic shard, so results are
  // unaffected; only transient host failures are papered over.
  u64 shard_retries = 2;
  u64 retry_backoff_ms = 50;
  // Graceful-shutdown flag, polled between shard starts (never mid-shard).
  // Usually common/shutdown.hpp's process-wide flag; tests pass their own.
  const std::atomic<bool>* stop_flag = nullptr;
  // Structured progress observer. Every heartbeat/attempt-failure line plus
  // shard-done/quarantine/complete events flow through one mutex-guarded
  // ProgressSink, so the callback sees the same total order the stream
  // prints. Called with the sink mutex held — must not block on campaign
  // work (the `restored` service forwards events to subscribers from here).
  CampaignEventCallback on_event;
};

// One planned shard: trials [trial_begin, trial_begin + trial_count) of
// `workload`, sampled from an Rng seeded with `seed`.
struct ShardSpec {
  u64 index = 0;  // global shard index (manifest/JSONL key)
  std::string workload;
  u64 trial_begin = 0;
  u64 trial_count = 0;
  u64 seed = 0;
};

struct ShardStats {
  u64 shard = 0;
  std::string workload;
  u64 trials = 0;
  double wall_ms = 0.0;
  bool resumed = false;  // reloaded from the trace instead of re-run
};

// A shard the supervisor gave up on (or, with `attempts` below the retry
// budget, one whose results could not be committed to the trace).
struct ShardFailure {
  u64 shard = 0;
  std::string workload;
  u64 attempts = 0;       // attempts made (1 + retries used)
  std::string error;      // the last attempt's what()
};

struct CampaignTelemetry {
  std::vector<ShardStats> shards;  // shard-index order
  std::vector<ShardFailure> quarantined;  // quarantine order
  u64 trials_total = 0;
  u64 resumed_trials = 0;
  double wall_ms = 0.0;
  bool complete = true;  // false when max_shards / quarantine / stop cut the run
  bool stopped = false;  // the stop flag ended the campaign early
};

// Seed for one shard's RNG stream: mixes the root seed with the workload
// name and the shard's ordinal within that workload, so streams are
// independent of workload order and count.
u64 shard_stream_seed(u64 root_seed, const std::string& workload, u64 ordinal);

// Seed for a tagged substream *within* one shard's stream. Non-default fault
// models draw their injection plans from Rng(model_stream_seed(shard.seed,
// tag)) instead of the shard's primary Rng, so (a) the primary stream's draw
// sequence — and with it every existing single-bit trace — is untouched, and
// (b) the substream is still a pure function of the shard, preserving byte
// identity at any worker count and across interrupt+resume. Pure mixing, no
// Rng is constructed or mutated (Rng::fork advances the parent, which would
// break (a)).
u64 model_stream_seed(u64 shard_seed, u64 stream_tag) noexcept;

// Cut every workload's trial count into shards of (at most) shard_trials.
std::vector<ShardSpec> plan_shards(u64 root_seed,
                                   const std::vector<std::string>& workloads,
                                   u64 trials_per_workload, u64 shard_trials);

// Map shared CLI flags onto run options (workers falls back to
// `default_workers` when --workers is absent).
CampaignRunOptions campaign_options_from_cli(const CliArgs& args,
                                             std::size_t default_workers);

// ---- fleet lease accounting ----
//
// Book-keeping for shard leases handed to remote workers by the fleet
// coordinator (service/fleet_coordinator.hpp). Pure state machine: the
// caller holds one mutex around every call and passes time in as a plain
// millisecond count, so the book is deterministic and unit-testable without
// sockets or clocks.
//
// Lifecycle of a shard: pending -> leased (possibly to several nodes at once
// via stealing) -> done | quarantined. Shards are deterministic, so duplicate
// execution is harmless; commits are first-wins and every later commit or
// release of a stale lease id is a no-op.
class ShardLeaseBook {
 public:
  explicit ShardLeaseBook(std::size_t shard_count);

  struct Lease {
    u64 id = 0;
    u64 shard = 0;
    bool stolen = false;  // duplicate of a still-outstanding straggler lease
  };

  // Mark a shard terminal without a lease (resume reloaded it from the trace).
  void mark_done(u64 shard);
  // Remove a shard from circulation without completing it (shard quarantine:
  // the shard itself keeps failing on every node). Counts toward
  // all_terminal() but not done_count().
  void mark_quarantined(u64 shard);

  // Hand out the next lease for `node`: the oldest pending shard (FIFO), or —
  // when nothing is pending — a *steal*: a duplicate lease on the oldest
  // outstanding shard whose lease is at least steal_age_ms old, is held by a
  // different node, and is not already co-leased to `node`. nullopt when
  // neither exists. Stealing bounds the campaign tail by the fastest healthy
  // node instead of the slowest straggler.
  std::optional<Lease> acquire(const std::string& node, u64 now_ms,
                               u64 steal_age_ms);

  // The lease's shard results were merged. True exactly once per shard: the
  // first commit wins, every later (stolen-duplicate or stale) lease id
  // returns false and must not be merged again.
  bool commit(u64 lease_id);

  // The lease failed (transport fault, node death, or worker-side shard
  // failure): requeue its shard unless it is terminal, still outstanding
  // under another node's lease, or already queued. Unknown ids are ignored.
  void release(u64 lease_id);

  // Leases issued for the shard so far (feeds the shard-quarantine budget).
  u64 attempts(u64 shard) const noexcept;

  bool done(u64 shard) const noexcept;
  bool all_terminal() const noexcept;  // every shard done or quarantined
  u64 done_count() const noexcept { return done_n_; }
  u64 pending_count() const noexcept { return pending_.size(); }
  u64 outstanding_count() const noexcept { return leases_.size(); }

 private:
  struct Outstanding {
    u64 shard = 0;
    std::string node;
    u64 since_ms = 0;
  };
  bool terminal(u64 shard) const noexcept {
    return shard < done_.size() && (done_[shard] != 0 || quarantined_[shard] != 0);
  }

  std::vector<u64> pending_;           // shard indices awaiting a lease (FIFO)
  std::size_t pending_head_ = 0;       // consumed prefix of pending_
  std::map<u64, Outstanding> leases_;  // lease id -> holder, issue order
  std::vector<char> done_;
  std::vector<char> quarantined_;
  std::vector<u64> attempts_;
  u64 next_lease_ = 1;
  u64 done_n_ = 0;
  u64 terminal_n_ = 0;
};

// ---- the generic runner ----
//
// Record      trial record type (VmTrialResult / UarchTrialRecord)
// run_shard   ShardSpec -> std::vector<Record>; must be deterministic and
//             thread-safe (shards run concurrently)
// to_line     (shard, slot, Record) -> JSONL line (no newline)
// from_line   line -> optional<tuple<shard, slot, Record>>
// outcome_tag Record -> short string for the heartbeat's outcome counts
template <class Record, class RunShard, class ToLine, class FromLine,
          class OutcomeTag>
std::vector<Record> run_sharded_campaign(const std::vector<ShardSpec>& shards,
                                         CampaignManifest identity,
                                         const CampaignRunOptions& opts,
                                         const RunShard& run_shard,
                                         const ToLine& to_line,
                                         const FromLine& from_line,
                                         const OutcomeTag& outcome_tag,
                                         CampaignTelemetry* telemetry) {
  using Clock = std::chrono::steady_clock;
  const auto campaign_start = Clock::now();
  const auto ms_since = [](Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  };

  identity.total_shards = shards.size();
  identity.total_trials = 0;
  for (const auto& shard : shards) identity.total_trials += shard.trial_count;
  identity.completed.clear();
  identity.completed_trials.clear();
  identity.wall_ms.clear();

  std::vector<std::vector<Record>> per_shard(shards.size());
  std::vector<char> done(shards.size(), 0);
  std::vector<ShardStats> stats(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    stats[s].shard = shards[s].index;
    stats[s].workload = shards[s].workload;
  }

  const bool streaming = !opts.out_jsonl.empty();
  const std::string manifest_path =
      streaming ? manifest_path_for(opts.out_jsonl) : std::string();

  // -- resume: trust the manifest, reload completed shards from the trace --
  if (streaming && opts.resume) {
    if (const auto prior = read_manifest(manifest_path)) {
      if (!prior->matches(identity)) {
        throw std::runtime_error(
            "campaign resume rejected: manifest at " + manifest_path +
            " was written by a different campaign (config/seed/shard geometry "
            "mismatch); delete the trace or rerun without --resume");
      }
      std::map<u64, u64> expected_trials;  // shard -> trials the manifest saw
      for (std::size_t i = 0; i < prior->completed.size(); ++i) {
        expected_trials[prior->completed[i]] = prior->completed_trials[i];
        if (prior->completed[i] < stats.size()) {
          stats[prior->completed[i]].wall_ms =
              static_cast<double>(prior->wall_ms[i]);
        }
      }

      std::ifstream trace(opts.out_jsonl);
      std::vector<std::vector<char>> filled(shards.size());
      std::string line;
      while (trace && std::getline(trace, line)) {
        if (line.empty()) continue;
        auto parsed = from_line(line);
        if (!parsed) continue;  // torn tail line from a killed writer
        auto& [shard, slot, record] = *parsed;
        if (shard >= shards.size() || !expected_trials.count(shard)) continue;
        if (slot >= shards[shard].trial_count) continue;
        auto& bucket = per_shard[shard];
        auto& mask = filled[shard];
        if (bucket.empty()) {
          bucket.resize(shards[shard].trial_count);
          mask.assign(shards[shard].trial_count, 0);
        }
        if (!mask[slot]) {
          bucket[slot] = std::move(record);
          mask[slot] = 1;
        }
      }
      for (const auto& [shard, trials] : expected_trials) {
        if (shard >= shards.size()) continue;
        u64 have = 0;
        for (const char f : filled[shard]) have += f;
        // Only shards whose every recorded trial survived in the trace are
        // trusted; anything torn is re-run.
        if (have == trials && trials <= shards[shard].trial_count) {
          per_shard[shard].resize(trials);
          done[shard] = 1;
          stats[shard].resumed = true;
          stats[shard].trials = trials;
        } else {
          per_shard[shard].clear();
        }
      }
    }
  }

  // -- stream bookkeeping (shared by workers, guarded by io_mutex) --
  Mutex io_mutex;
  std::ofstream trace_out;
  if (streaming) {
    // Start the trace fresh with the resumed shards in canonical order; the
    // manifest is rewritten to match, so a crash mid-campaign always leaves a
    // consistent (trace, manifest) pair behind.
    trace_out.open(opts.out_jsonl, std::ios::trunc);
    if (!trace_out) {
      throw std::runtime_error("cannot open campaign trace for writing: " +
                               opts.out_jsonl);
    }
    trace_out << trace_header_line(identity.kind) << '\n';
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (!done[s]) continue;
      for (std::size_t slot = 0; slot < per_shard[s].size(); ++slot) {
        trace_out << to_line(shards[s].index, slot, per_shard[s][slot]) << '\n';
      }
      identity.completed.push_back(shards[s].index);
      identity.completed_trials.push_back(per_shard[s].size());
      identity.wall_ms.push_back(static_cast<u64>(stats[s].wall_ms));
    }
    trace_out.flush();
    write_manifest(manifest_path, identity);
  }

  u64 trials_done = 0, resumed_trials = 0;
  std::map<std::string, u64> outcome_counts;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (!done[s]) continue;
    trials_done += per_shard[s].size();
    for (const auto& record : per_shard[s]) ++outcome_counts[outcome_tag(record)];
  }
  resumed_trials = trials_done;
  u64 shards_completed = 0;
  for (const char d : done) shards_completed += d;
  const u64 resumed_shards = shards_completed;

  // -- the serialized progress sink --
  //
  // Every progress line and structured event funnels through this one
  // mutex-guarded sink: lines cannot tear or interleave under high worker
  // counts, and an on_event observer (the `restored` service multiplexing
  // the stream to socket subscribers) sees events in the exact order the
  // stream printed them.
  ProgressSink sink(
      opts.heartbeat_stream != nullptr ? opts.heartbeat_stream : stderr,
      opts.on_event);
  // Snapshot the shared counters into an event. Callers hold io_mutex (or
  // run before/after the worker pool), so the counts are consistent.
  const auto make_event = [&](CampaignEvent::Kind kind) {
    CampaignEvent event;
    event.kind = kind;
    event.campaign_kind = identity.kind;
    event.shards_done = shards_completed;
    event.shards_total = shards.size();
    event.trials_done = trials_done;
    event.trials_total = identity.total_trials;
    const double elapsed_s = ms_since(campaign_start) / 1000.0;
    const u64 fresh = trials_done - resumed_trials;
    event.rate = elapsed_s > 0 ? static_cast<double>(fresh) / elapsed_s : 0.0;
    return event;
  };

  const auto heartbeat = [&] {
    auto event = make_event(CampaignEvent::Kind::kHeartbeat);
    const double rate = event.rate;
    const u64 remaining = identity.total_trials - trials_done;
    std::string outcomes;
    for (const auto& [tag, n] : outcome_counts) {
      outcomes += ' ' + tag + '=' + std::to_string(n);
    }
    char head[160];
    std::snprintf(head, sizeof head,
                  "[campaign %s] shard %llu/%llu | %llu/%llu trials | "
                  "%.0f trials/s | ETA %.1fs |",
                  identity.kind.c_str(),
                  static_cast<unsigned long long>(shards_completed),
                  static_cast<unsigned long long>(shards.size()),
                  static_cast<unsigned long long>(trials_done),
                  static_cast<unsigned long long>(identity.total_trials),
                  rate, rate > 0 ? static_cast<double>(remaining) / rate : 0.0);
    event.text = head + outcomes;
    sink.emit(event);
  };

  // -- run the pending shards under supervision --
  std::vector<ShardFailure> failures;
  u64 submitted = 0;
  bool budget_exhausted = false;
  const auto stop_requested = [&opts] {
    return opts.stop_flag != nullptr &&
           opts.stop_flag->load(std::memory_order_relaxed);
  };
  // Extract a what() from the in-flight exception of a catch(...) handler.
  const auto current_what = [] {
    try {
      throw;
    } catch (const std::exception& e) {
      return std::string(e.what());
    } catch (...) {
      return std::string("non-standard exception");
    }
  };
  // Every failing attempt of every shard is logged (never just the first):
  // diagnosing a sick host needs the full failure pattern.
  const auto log_attempt_failure = [&](const ShardSpec& shard, u64 attempt,
                                       u64 attempts_max, const std::string& what) {
    char head[128];
    std::snprintf(head, sizeof head,
                  "[campaign %s] shard %llu (%s) attempt %llu/%llu failed: ",
                  identity.kind.c_str(),
                  static_cast<unsigned long long>(shard.index),
                  shard.workload.c_str(),
                  static_cast<unsigned long long>(attempt),
                  static_cast<unsigned long long>(attempts_max));
    auto event = make_event(CampaignEvent::Kind::kAttemptFailed);
    event.shard = shard.index;
    event.workload = shard.workload;
    event.attempt = attempt;
    event.attempts_max = attempts_max;
    event.error = what;
    event.text = head + what;
    sink.emit(event);
  };
  // Record a quarantine in telemetry and (when streaming) the manifest, so
  // tools/campaign_status can report it. The shard is *not* completed, so a
  // plain --resume re-attempts it; the resume-time manifest rewrite above
  // drops the stale quarantine record.
  const auto quarantine_locked = [&](const ShardSpec& shard, u64 attempts,
                                     const std::string& what) {
    failures.push_back(ShardFailure{shard.index, shard.workload, attempts, what});
    if (streaming) {
      identity.quarantined.push_back(shard.index);
      identity.quarantine_attempts.push_back(attempts);
      identity.quarantine_workloads.push_back(shard.workload);
      identity.quarantine_errors.push_back(what);
      try {
        write_manifest(manifest_path, identity);
      } catch (...) {
        // The quarantine is still in telemetry; a host that cannot even
        // write the manifest has nothing better to offer.
      }
    }
    // No line of its own (the last kAttemptFailed already printed the error);
    // subscribers still need the structured terminal verdict for the shard.
    auto event = make_event(CampaignEvent::Kind::kQuarantine);
    event.shard = shard.index;
    event.workload = shard.workload;
    event.attempt = attempts;
    event.attempts_max = opts.shard_retries + 1;
    event.error = what;
    sink.emit(event);
  };
  {
    ThreadPool pool(opts.workers);
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (done[s]) continue;
      if (stop_requested()) break;
      if (opts.max_shards != 0 && submitted >= opts.max_shards) {
        budget_exhausted = true;
        break;
      }
      ++submitted;
      pool.submit([&, s] {
        // A stop requested while this shard sat in the queue: skip it. An
        // already-*running* shard is never interrupted.
        if (stop_requested()) return;
        const u64 attempts_max = opts.shard_retries + 1;
        for (u64 attempt = 1; attempt <= attempts_max; ++attempt) {
          std::vector<Record> records;
          double wall = 0.0;
          try {
            const auto shard_start = Clock::now();
            records = run_shard(shards[s]);
            wall = ms_since(shard_start);
          } catch (...) {
            const std::string what = current_what();
            MutexLock lock(io_mutex);
            log_attempt_failure(shards[s], attempt, attempts_max, what);
            if (attempt == attempts_max) {
              quarantine_locked(shards[s], attempt, what);
              return;
            }
            if (stop_requested()) return;  // don't backoff-spin into a stop
            // Bounded exponential backoff before the next attempt. Wall
            // clock only paces the retry; it never enters any record.
            const u64 backoff_ms = opts.retry_backoff_ms << (attempt - 1);
            if (backoff_ms != 0) {
              std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
            }
            continue;
          }

          // Commit. A commit failure is host I/O trouble with the trace
          // already part-written, so it quarantines immediately instead of
          // retrying (a re-run would duplicate trace lines).
          try {
            MutexLock lock(io_mutex);
            if (streaming) {
              for (std::size_t slot = 0; slot < records.size(); ++slot) {
                trace_out << to_line(shards[s].index, slot, records[slot]) << '\n';
              }
              trace_out.flush();
              identity.completed.push_back(shards[s].index);
              identity.completed_trials.push_back(records.size());
              identity.wall_ms.push_back(static_cast<u64>(wall));
              write_manifest(manifest_path, identity);
            }
            stats[s].trials = records.size();
            stats[s].wall_ms = wall;
            for (const auto& record : records) ++outcome_counts[outcome_tag(record)];
            trials_done += records.size();
            ++shards_completed;
            per_shard[s] = std::move(records);
            done[s] = 1;
            {
              auto event = make_event(CampaignEvent::Kind::kShardDone);
              event.shard = shards[s].index;
              event.workload = shards[s].workload;
              sink.emit(event);
            }
            if (opts.heartbeat_every_shards != 0 &&
                (shards_completed - resumed_shards) % opts.heartbeat_every_shards ==
                    0) {
              heartbeat();
            }
          } catch (...) {
            const std::string what = current_what();
            MutexLock lock(io_mutex);
            log_attempt_failure(shards[s], attempt, attempts_max, what);
            quarantine_locked(shards[s], attempt, what);
          }
          return;
        }
      });
    }
    pool.wait_idle();
  }
  const bool stopped = stop_requested();

  const bool complete = shards_completed == shards.size();
  if (streaming && complete) {
    // Canonicalize: rewrite the trace in (shard, slot) order so a complete
    // trace is byte-identical however the campaign was scheduled.
    trace_out.close();
    std::ofstream canonical(opts.out_jsonl, std::ios::trunc);
    canonical << trace_header_line(identity.kind) << '\n';
    identity.completed.clear();
    identity.completed_trials.clear();
    identity.wall_ms.clear();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      for (std::size_t slot = 0; slot < per_shard[s].size(); ++slot) {
        canonical << to_line(shards[s].index, slot, per_shard[s][slot]) << '\n';
      }
      identity.completed.push_back(shards[s].index);
      identity.completed_trials.push_back(per_shard[s].size());
      identity.wall_ms.push_back(static_cast<u64>(stats[s].wall_ms));
    }
    canonical.flush();
    write_manifest(manifest_path, identity);
  }

  sink.emit(make_event(CampaignEvent::Kind::kComplete));

  if (telemetry != nullptr) {
    telemetry->shards.clear();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (done[s]) telemetry->shards.push_back(stats[s]);
    }
    telemetry->quarantined = failures;
    telemetry->trials_total = trials_done;
    telemetry->resumed_trials = resumed_trials;
    telemetry->wall_ms = ms_since(campaign_start);
    telemetry->complete = complete && !budget_exhausted;
    telemetry->stopped = stopped;
  }

  std::vector<Record> out;
  out.reserve(trials_done);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (auto& record : per_shard[s]) out.push_back(std::move(record));
  }
  return out;
}

}  // namespace restore::faultinject
