// Campaign persistence: the JSONL trial-trace format streamed by the sharded
// campaign runner, and the sidecar manifest that makes an interrupted
// campaign resumable.
//
// A campaign writes two files:
//   <out>.jsonl           one flat JSON object per trial, tagged with the
//                         shard index and the trial's slot within the shard
//   <out>.jsonl.manifest.json
//                         campaign identity (kind, config hash, seed, shard
//                         geometry) plus the completed-shard record
//
// Every value that reaches the JSONL is an integer, bool or identifier-like
// string, so the round trip is exact: parsing a line reconstructs the trial
// record bit-for-bit. Latencies of kNever are omitted rather than printed.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"

namespace restore::faultinject {

// ---- schema versioning ----
//
// Both files carry a `schema_version`. History:
//   (absent)  v1 — the pre-versioning format; accepted as legacy on read
//   2         adds the trace header line, per-trial abort records, and the
//             manifest quarantine arrays; later extended (compatibly — the
//             arrays are optional on read and written only when present)
//             with the fleet node-quarantine arrays
// Readers accept any version <= kCampaignSchemaVersion and reject future
// versions with a clear error instead of silently misparsing them.
inline constexpr u64 kCampaignSchemaVersion = 2;

// ---- manifest ----

struct CampaignManifest {
  u64 schema_version = kCampaignSchemaVersion;
  std::string kind;      // "vm" | "uarch"
  u64 config_hash = 0;   // hash over the full campaign config (see campaigns)
  u64 seed = 0;
  u64 shard_trials = 0;  // shard geometry; changing it changes the sampling
  u64 total_shards = 0;
  u64 total_trials = 0;
  // Parallel arrays, in shard-completion order.
  std::vector<u64> completed;        // shard indices
  std::vector<u64> completed_trials; // trials the shard actually produced
  std::vector<u64> wall_ms;          // shard wall time, rounded to ms
  // Parallel arrays of quarantined shards: shards whose runner kept throwing
  // after the supervisor's bounded retries. They are *not* in `completed`, so
  // a plain --resume re-attempts them; the record is for status reporting.
  std::vector<u64> quarantined;             // shard indices
  std::vector<u64> quarantine_attempts;     // attempts made (1 + retries)
  std::vector<std::string> quarantine_workloads;
  std::vector<std::string> quarantine_errors;  // last attempt's what()
  // Parallel arrays of quarantined fleet nodes (fleet_coordinator.hpp):
  // workers benched after repeated connection/transport faults. Their shards
  // were re-leased elsewhere, so node quarantine alone never makes a trace
  // partial — the record is the audit trail of the sick hosts.
  std::vector<std::string> node_quarantined;   // node addresses (host:port)
  std::vector<u64> node_faults;                // transport faults observed
  std::vector<std::string> node_errors;        // last fault's description

  bool has_quarantine() const noexcept { return !quarantined.empty(); }
  bool has_node_quarantine() const noexcept { return !node_quarantined.empty(); }

  // True when `other` names the same campaign this manifest was written by.
  // schema_version is deliberately excluded: a v1 (legacy) manifest of the
  // same campaign stays resumable.
  bool matches(const CampaignManifest& other) const noexcept {
    return kind == other.kind && config_hash == other.config_hash &&
           seed == other.seed && shard_trials == other.shard_trials &&
           total_shards == other.total_shards && total_trials == other.total_trials;
  }
};

// Sidecar path for a JSONL trace.
std::string manifest_path_for(const std::string& jsonl_path);

// Atomically (write-then-rename) persist the manifest.
void write_manifest(const std::string& path, const CampaignManifest& manifest);

// Returns nullopt when the file does not exist; throws std::runtime_error on
// a file that exists but cannot be parsed.
std::optional<CampaignManifest> read_manifest(const std::string& path);

// ---- trace header ----

// First line of a (v2+) trace: `{"schema_version":2,"kind":"vm"}`. Trial
// parsers return nullopt for it, so version-unaware consumers skip it like
// any other non-trial line; version-aware consumers use parse_trace_header to
// reject traces written by a future format.
struct TraceHeader {
  u64 schema_version = kCampaignSchemaVersion;
  std::string kind;  // "vm" | "uarch"
};
std::string trace_header_line(std::string_view kind);
std::optional<TraceHeader> parse_trace_header(const std::string& line);

// ---- trial lines ----

// Serialize one trial as a single JSONL line (no trailing newline).
std::string vm_trial_to_jsonl(u64 shard, u64 slot, const VmTrialResult& trial);
std::string uarch_trial_to_jsonl(u64 shard, u64 slot, const UarchTrialRecord& trial);

// Parse one line back; nullopt on malformed input.
std::optional<std::tuple<u64, u64, VmTrialResult>> vm_trial_from_jsonl(
    const std::string& line);
std::optional<std::tuple<u64, u64, UarchTrialRecord>> uarch_trial_from_jsonl(
    const std::string& line);

// Just the (shard, slot) key of a trial line, kind-agnostic; nullopt for the
// trace header, blank lines, and anything malformed. The fleet coordinator
// merges remotely produced shard blobs without materializing trial records,
// so this is all the parsing its resume path needs.
std::optional<std::pair<u64, u64>> trial_line_key(const std::string& line);

// Whole-stream readers (skip blank lines and current-or-older trace headers;
// throw on a malformed line or a future-version header).
struct ParsedVmTrial {
  u64 shard = 0;
  u64 slot = 0;
  VmTrialResult trial;
};
struct ParsedUarchTrial {
  u64 shard = 0;
  u64 slot = 0;
  UarchTrialRecord trial;
};
std::vector<ParsedVmTrial> read_vm_trials_jsonl(std::istream& in);
std::vector<ParsedUarchTrial> read_uarch_trials_jsonl(std::istream& in);

// ---- enum string helpers shared by the JSONL and CSV formats ----

std::string_view to_string(uarch::StorageClass storage) noexcept;
std::string_view to_string(uarch::LhfProtection protection) noexcept;
std::optional<VmOutcome> vm_outcome_from_string(std::string_view name) noexcept;
std::optional<uarch::StorageClass> storage_from_string(std::string_view name) noexcept;
std::optional<uarch::LhfProtection> protection_from_string(std::string_view name) noexcept;

// FNV-1a over a byte string; the campaigns build their config hashes with it.
u64 fnv1a(std::string_view bytes, u64 seed = 0xcbf29ce484222325ULL) noexcept;

}  // namespace restore::faultinject
