#include "faultinject/classify.hpp"

#include <algorithm>

namespace restore::faultinject {

namespace {

bool is_failing(const UarchTrialRecord& trial) {
  // A trial fails if architectural state is corrupt at the end, the machine
  // crashed or hung, or an incorrect instruction retired (control-flow
  // violation) — value corruption that was overwritten is not a failure
  // (paper §4.2's refined definition).
  return trial.arch_corrupt_at_end || trial.lat_exception != kNever ||
         trial.lat_deadlock != kNever || trial.lat_cfv != kNever;
}

}  // namespace

UarchOutcome classify_trial(const UarchTrialRecord& trial, DetectorModel detector,
                            ProtectionModel protection, u64 interval) {
  // Contained aborts outrank everything: the trial's observations stop at the
  // abort, so no hardware category can be trusted. They are tool artefacts,
  // excluded from failure/coverage statistics below.
  if (trial.aborted()) {
    return trial.abort_resource ? UarchOutcome::kResourceExhausted
                                : UarchOutcome::kSimAbort;
  }

  if (protection == ProtectionModel::kLhf &&
      trial.protection != uarch::LhfProtection::kNone) {
    // ECC corrects the flip in place; parity detects it on read and the
    // machine recovers via flush/rollback. Either way, no failure: the trial
    // lands in `other` (the paper notes Figure 6's larger `other` category
    // is exactly these ECC-covered faults).
    return UarchOutcome::kOther;
  }

  if (!is_failing(trial)) {
    if (trial.trace_diverged) return UarchOutcome::kMasked;  // healed
    if (trial.uarch_state_equal) return UarchOutcome::kMasked;
    return trial.live_state_diff ? UarchOutcome::kLatent : UarchOutcome::kOther;
  }

  // Coverage, in the paper's precedence order. The watchdog covers deadlocks
  // at any interval; exceptions and control-flow symptoms cover a failure
  // only when they fire within the rollback reach.
  if (trial.lat_deadlock != kNever) return UarchOutcome::kDeadlock;
  if (trial.lat_exception <= interval) return UarchOutcome::kException;
  u64 cfv_latency = trial.lat_hiconf;
  switch (detector) {
    case DetectorModel::kPerfectCfv:
      cfv_latency = trial.lat_cfv;
      break;
    case DetectorModel::kJrsConfidence:
      break;
    case DetectorModel::kJrsPlusIllegalFlow:
      cfv_latency = std::min(trial.lat_hiconf, trial.lat_illegal_flow);
      break;
  }
  if (cfv_latency <= interval) return UarchOutcome::kCfv;
  return UarchOutcome::kSdc;
}

std::map<UarchOutcome, double> category_shares(
    const std::vector<UarchTrialRecord>& trials, DetectorModel detector,
    ProtectionModel protection, u64 interval) {
  std::map<UarchOutcome, double> shares;
  if (trials.empty()) return shares;
  for (const auto& trial : trials) {
    shares[classify_trial(trial, detector, protection, interval)] += 1.0;
  }
  for (auto& [category, value] : shares) value /= static_cast<double>(trials.size());
  return shares;
}

double failure_fraction(const std::vector<UarchTrialRecord>& trials,
                        ProtectionModel protection) {
  if (trials.empty()) return 0.0;
  std::size_t failures = 0;
  for (const auto& trial : trials) {
    if (trial.aborted()) continue;  // tool artefact, not a hardware outcome
    if (protection == ProtectionModel::kLhf &&
        trial.protection != uarch::LhfProtection::kNone) {
      continue;  // corrected/recovered by the hardware protection
    }
    // Latent faults count as failures (paper §5.1.1: "only 8% of all trials
    // (those that fall into the deadlock, exception, cfv, sdc, and latent
    // categories) are failures").
    if (is_failing(trial) ||
        (!trial.trace_diverged && !trial.uarch_state_equal && trial.live_state_diff)) {
      ++failures;
    }
  }
  const std::size_t eligible =
      trials.size() - static_cast<std::size_t>(std::count_if(
                          trials.begin(), trials.end(),
                          [](const UarchTrialRecord& t) { return t.aborted(); }));
  if (eligible == 0) return 0.0;
  return static_cast<double>(failures) / eligible;
}

double uncovered_fraction(const std::vector<UarchTrialRecord>& trials,
                          DetectorModel detector, ProtectionModel protection,
                          u64 interval) {
  if (trials.empty()) return 0.0;
  std::size_t uncovered = 0;
  std::size_t eligible = 0;
  for (const auto& trial : trials) {
    const UarchOutcome outcome = classify_trial(trial, detector, protection, interval);
    if (is_contained_abort(outcome)) continue;  // excluded from coverage stats
    ++eligible;
    if (outcome == UarchOutcome::kSdc || outcome == UarchOutcome::kLatent) {
      ++uncovered;
    }
  }
  if (eligible == 0) return 0.0;
  return static_cast<double>(uncovered) / eligible;
}

double mtbf_improvement(const std::vector<UarchTrialRecord>& trials,
                        DetectorModel detector, ProtectionModel protection,
                        u64 interval) {
  const double base = failure_fraction(trials, ProtectionModel::kBaseline);
  const double after = uncovered_fraction(trials, detector, protection, interval);
  if (after <= 0.0) return base > 0.0 ? 1e9 : 1.0;
  return base / after;
}

}  // namespace restore::faultinject
