#include "faultinject/uarch_campaign.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace restore::faultinject {

using uarch::Core;
using uarch::StateRegistry;
using uarch::SymptomEvent;

namespace {

// Golden continuation from an injection point: the retired trace over the
// monitor window plus the golden machine state at the end of the window.
struct GoldenContinuation {
  std::vector<vm::Retired> trace;
  Core end_core;
  u64 base_retired = 0;

  explicit GoldenContinuation(const Core& at_point, u64 monitor_cycles)
      : end_core(at_point), base_retired(at_point.retired_count()) {
    trace.reserve(monitor_cycles);
    for (u64 c = 0; c < monitor_cycles && end_core.running(); ++c) {
      end_core.cycle();
      for (const auto& rec : end_core.retired_this_cycle()) trace.push_back(rec);
    }
  }
};

UarchTrialRecord run_trial(const Core& golden_at_point,
                           const GoldenContinuation& golden,
                           const uarch::BitRef& bit, u64 monitor_cycles,
                           u64 catchup_cycles) {
  const StateRegistry& reg = StateRegistry::instance();

  UarchTrialRecord record;
  record.bit = bit;
  record.storage = reg.field(bit).storage;
  record.protection = reg.field(bit).protection;
  record.field_name = reg.field(bit).name;

  Core faulty = golden_at_point;
  reg.flip(faulty, bit);
  const u64 base = faulty.retired_count();

  u64 compared = 0;
  bool overrun = false;
  bool prev_pc_mismatch = false;
  for (u64 c = 0; c < monitor_cycles && faulty.running(); ++c) {
    faulty.cycle();
    for (const auto& rec : faulty.retired_this_cycle()) {
      const u64 idx = compared++;
      if (idx >= golden.trace.size()) {
        overrun = true;  // retired past the golden window (timing shift)
        continue;
      }
      const vm::Retired& ref = golden.trace[idx];
      if (rec.pc != ref.pc) {
        // A control-flow violation is a *sustained* divergence of the retired
        // pc stream. A single isolated mismatch is a corrupted pc bookkeeping
        // field (e.g. a ROB pc bit), not a different instruction stream.
        if (prev_pc_mismatch) {
          record.lat_cfv = std::min(record.lat_cfv, idx);
        }
        prev_pc_mismatch = true;
        record.trace_diverged = true;
      } else {
        prev_pc_mismatch = false;
        if (!rec.same_effect(ref)) record.trace_diverged = true;
      }
    }
    for (const auto& ev : faulty.symptoms_this_cycle()) {
      const u64 latency =
          ev.retired_count >= base ? ev.retired_count - base : 0;
      switch (ev.kind) {
        case SymptomEvent::Kind::kException:
          record.lat_exception = std::min(record.lat_exception, latency);
          break;
        case SymptomEvent::Kind::kHighConfMispredict:
          record.lat_hiconf = std::min(record.lat_hiconf, latency);
          break;
        case SymptomEvent::Kind::kWatchdog:
          record.lat_deadlock = std::min(record.lat_deadlock, latency);
          break;
        case SymptomEvent::Kind::kIllegalFlow:
          record.lat_illegal_flow = std::min(record.lat_illegal_flow, latency);
          break;
        case SymptomEvent::Kind::kCacheMissBurst:
          record.lat_cache_burst = std::min(record.lat_cache_burst, latency);
          break;
        default:
          break;
      }
    }
  }

  record.end_status = faulty.status();

  if (faulty.status() == Core::Status::kFaulted ||
      faulty.status() == Core::Status::kDeadlocked) {
    record.arch_corrupt_at_end = true;
    return record;
  }

  if (!record.trace_diverged && !overrun) {
    // Effect-identical prefix: no architectural corruption was committed.
    // Compare full microarchitectural state against the golden end to
    // separate masked / latent / other.
    record.arch_corrupt_at_end = false;
    const auto diff = reg.diff(faulty, golden.end_core);
    record.uarch_state_equal =
        !diff.any && faulty.memory().digest() == golden.end_core.memory().digest();
    record.live_state_diff = diff.any_live;
    return record;
  }

  // Diverged or timing-shifted: let the faulty machine catch up to the golden
  // retirement boundary, then compare architectural state (the paper's
  // refined failure definition: corrupt-then-overwritten is not a failure).
  const u64 target = golden.base_retired + golden.trace.size();
  for (u64 c = 0; c < catchup_cycles && faulty.running() &&
                  faulty.retired_count() < target;
       ++c) {
    faulty.cycle();
    for (const auto& ev : faulty.symptoms_this_cycle()) {
      const u64 latency = ev.retired_count >= base ? ev.retired_count - base : 0;
      if (ev.kind == SymptomEvent::Kind::kException) {
        record.lat_exception = std::min(record.lat_exception, latency);
      } else if (ev.kind == SymptomEvent::Kind::kWatchdog) {
        record.lat_deadlock = std::min(record.lat_deadlock, latency);
      }
    }
  }
  record.end_status = faulty.status();
  if (faulty.status() == Core::Status::kFaulted ||
      faulty.status() == Core::Status::kDeadlocked) {
    record.arch_corrupt_at_end = true;
    return record;
  }

  const vm::ArchSnapshot fa = faulty.arch_snapshot();
  const vm::ArchSnapshot ga = golden.end_core.arch_snapshot();
  record.arch_corrupt_at_end =
      faulty.retired_count() != target || !(fa == ga) ||
      faulty.memory().digest() != golden.end_core.memory().digest() ||
      faulty.output() != golden.end_core.output();
  return record;
}

}  // namespace

UarchTrialRecord run_uarch_trial(const Core& golden_at_point,
                                 const uarch::BitRef& bit, u64 monitor_cycles,
                                 u64 catchup_cycles) {
  GoldenContinuation golden(golden_at_point, monitor_cycles);
  return run_trial(golden_at_point, golden, bit, monitor_cycles, catchup_cycles);
}

UarchCampaignResult run_uarch_campaign(const UarchCampaignConfig& config) {
  const StateRegistry& reg = StateRegistry::instance();
  UarchCampaignResult result;
  result.eligible_bits = config.latches_only
                             ? reg.total_bits(uarch::StorageClass::kLatch)
                             : reg.total_bits();
  Rng rng(config.seed);

  std::vector<const workloads::Workload*> selected;
  if (config.workloads.empty()) {
    for (const auto& wl : workloads::all()) selected.push_back(&wl);
  } else {
    for (const auto& name : config.workloads) {
      selected.push_back(&workloads::by_name(name));
    }
  }

  for (const workloads::Workload* wl : selected) {
    // Total clean cycle count (cached per workload).
    static std::map<std::string, u64> cycle_cache;
    u64& total_cycles = cycle_cache[wl->name];
    if (total_cycles == 0) {
      Core probe(wl->program, config.core_config);
      probe.run(100'000'000);
      total_cycles = probe.cycle_count();
    }

    const u64 points =
        std::max<u64>(1, (config.trials_per_workload + config.trials_per_point - 1) /
                             config.trials_per_point);
    // Injection points in [5%, 85%] of the clean run, sorted so the golden
    // core can be advanced incrementally.
    std::vector<u64> cycles;
    cycles.reserve(points);
    const u64 lo = total_cycles / 20;
    const u64 hi = std::max(lo + 1, total_cycles * 17 / 20);
    for (u64 p = 0; p < points; ++p) cycles.push_back(rng.range(lo, hi));
    std::sort(cycles.begin(), cycles.end());

    ThreadPool pool(config.workers);
    Core golden(wl->program, config.core_config);
    u64 done = 0;
    for (u64 p = 0; p < points && done < config.trials_per_workload; ++p) {
      while (golden.running() && golden.cycle_count() < cycles[p]) golden.cycle();
      if (!golden.running()) break;
      const GoldenContinuation continuation(golden, config.monitor_cycles);

      // Pre-sample the point's bits sequentially so results are independent
      // of the worker count, then fan the trials out.
      std::vector<uarch::BitRef> bits;
      while (bits.size() < config.trials_per_point &&
             done + bits.size() < config.trials_per_workload) {
        bits.push_back(config.latches_only
                           ? reg.sample(rng, uarch::StorageClass::kLatch)
                           : reg.sample(rng));
      }
      std::vector<UarchTrialRecord> records(bits.size());
      pool.parallel_for(bits.size(), [&](std::size_t t) {
        records[t] = run_trial(golden, continuation, bits[t],
                               config.monitor_cycles, config.catchup_cycles);
      });
      for (auto& record : records) {
        record.workload = wl->name;
        result.trials.push_back(std::move(record));
      }
      done += bits.size();
    }
  }
  return result;
}

}  // namespace restore::faultinject
