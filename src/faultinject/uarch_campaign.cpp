#include "faultinject/uarch_campaign.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/containment.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/trial_speed.hpp"
#include "vm/memory.hpp"

namespace restore::faultinject {

using uarch::Core;
using uarch::StateRegistry;
using uarch::SymptomEvent;

namespace {

// Convergence-checkpoint schedule over the monitor window: dense while young
// (most masked faults are overwritten within a few hundred cycles) and sparse
// afterwards. Offsets are cycle counts from the injection point.
constexpr u64 kDenseCheckpointStride = 64;
constexpr u64 kDenseCheckpointLimit = 2048;
constexpr u64 kSparseCheckpointStride = 1024;

bool is_checkpoint_offset(u64 offset) noexcept {
  if (offset == 0) return false;
  if (offset <= kDenseCheckpointLimit) return offset % kDenseCheckpointStride == 0;
  return offset % kSparseCheckpointStride == 0;
}

// Golden continuation from an injection point: the retired trace over the
// monitor window plus the golden machine state at the end of the window.
//
// When built with checkpoints, it additionally memoizes the golden machine
// at scheduled cycle offsets plus the golden symptom stream over the window,
// so a trial whose faulty core re-converges to the golden machine only
// simulates its divergence window and derives the rest of its record from
// golden data (see run_trial).
struct GoldenContinuation {
  std::vector<vm::Retired> trace;
  Core end_core;
  u64 base_retired = 0;

  // Checkpoint c: golden state after executing checkpoint_offsets[c] cycles
  // past the injection point, with trace_len_at[c] records retired so far.
  std::vector<u64> checkpoint_offsets;
  std::vector<u64> trace_len_at;
  std::vector<Core> checkpoints;

  // Golden's own symptom stream over the window (a clean run can emit
  // high-confidence mispredicts or cache-miss bursts); replayed for trials
  // that converge before the window ends.
  struct GoldenSymptom {
    u64 cycle_offset = 0;
    SymptomEvent ev;
  };
  std::vector<GoldenSymptom> symptoms;

  GoldenContinuation(const Core& at_point, u64 monitor_cycles,
                     bool with_checkpoints)
      : end_core(at_point), base_retired(at_point.retired_count()) {
    trace.reserve(monitor_cycles);
    for (u64 c = 0; c < monitor_cycles && end_core.running(); ++c) {
      end_core.cycle();
      for (const auto& rec : end_core.retired_this_cycle()) trace.push_back(rec);
      if (with_checkpoints) {
        for (const auto& ev : end_core.symptoms_this_cycle()) {
          symptoms.push_back({c + 1, ev});
        }
        if (is_checkpoint_offset(c + 1)) {
          checkpoint_offsets.push_back(c + 1);
          trace_len_at.push_back(trace.size());
          checkpoints.push_back(end_core);
        }
      }
    }
  }
};

// Page cap implied by a budget (the tighter of max_pages and max_bytes).
u64 effective_page_cap(const ResourceBudget& budget) {
  u64 cap = budget.max_pages;
  if (budget.max_bytes != 0) {
    const u64 byte_pages = (budget.max_bytes + vm::kPageBytes - 1) / vm::kPageBytes;
    cap = cap == 0 ? byte_pages : std::min(cap, byte_pages);
  }
  return cap;
}

// Runs one trial. `faulty` must be a fresh copy of the injection-point core
// (callers either construct it or restore a per-shard arena image in place);
// run_trial flips every bit of the plan and monitors from there. A transient
// (SET) plan additionally reverts, after the first monitored cycle, every
// planned bit whose latch still holds the flipped value: the glitched
// combinational cone re-evaluates correctly on the next clock, so only a
// latch the machine did not overwrite snaps back. A no-upset plan (rate-
// driven model, no strike this trial) flips nothing and monitors a machine
// identical to golden.
UarchTrialRecord run_trial(Core& faulty, const GoldenContinuation& golden,
                           const InjectionPlan& plan, u64 monitor_cycles,
                           u64 catchup_cycles,
                           const ResourceBudget& trial_budget) {
  const StateRegistry& reg = StateRegistry::instance();

  const uarch::BitRef& bit = plan.bits.front();
  UarchTrialRecord record;
  record.bit = bit;
  record.storage = reg.field(bit).storage;
  record.protection = reg.field(bit).protection;
  record.field_name = reg.field(bit).name;

  std::vector<u64> flipped_value;
  if (plan.upset) {
    if (plan.transient) {
      flipped_value.reserve(plan.bits.size());
      for (const auto& b : plan.bits) {
        flipped_value.push_back(reg.read(faulty, b) ^ (u64{1} << b.bit));
      }
    }
    for (const auto& b : plan.bits) reg.flip(faulty, b);
  }
  const u64 base = faulty.retired_count();

  // Budget limits are allowances *from the injection point*; the core checks
  // absolute counters, so translate before installing.
  if (!trial_budget.unlimited()) {
    ResourceBudget absolute = trial_budget;
    if (absolute.max_cycles != 0) absolute.max_cycles += faulty.cycle_count();
    if (absolute.max_retired != 0) absolute.max_retired += base;
    absolute.max_pages = effective_page_cap(trial_budget);
    absolute.max_bytes = 0;
    faulty.set_resource_budget(absolute);
  }

  // Convergence shortcut: once the faulty machine is bit-identical to a
  // golden checkpoint at the same cycle offset, every future cycle of the
  // trial is bit-identical to golden's, so the rest of the record is derived
  // from golden data instead of simulated. Guards:
  //  - unlimited budget only: a budget-limited trial's abort point depends on
  //    executing the real cycles (absolute cycle/page counters);
  //  - base == golden.base_retired and compared == trace_len_at[cp]: rules
  //    out the pathological case of a corrupted retirement counter that
  //    drifts back onto the golden value, which would misalign the remaining
  //    trace comparison. state_equal then guarantees identical futures.
  const bool shortcut_eligible =
      trial_budget.unlimited() && !golden.checkpoints.empty() &&
      base == golden.base_retired;

  u64 compared = 0;
  bool overrun = false;
  bool prev_pc_mismatch = false;
  bool converged = false;
  u64 converged_offset = 0;
  std::size_t next_cp = 0;
  for (u64 c = 0; c < monitor_cycles && faulty.running(); ++c) {
    faulty.cycle();
    if (plan.transient && plan.upset && c == 0) {
      // SET semantics: the glitch lasted one clock. Any planned latch still
      // holding its flipped value was not overwritten by the machine, so the
      // re-evaluated combinational cone restores it; a latch the machine
      // rewrote (or consumed) keeps whatever propagated. The revert happens
      // before the first convergence checkpoint (offset 64), so the shortcut
      // machinery never sees a mid-transient state.
      for (std::size_t i = 0; i < plan.bits.size(); ++i) {
        if (reg.read(faulty, plan.bits[i]) == flipped_value[i]) {
          reg.flip(faulty, plan.bits[i]);
        }
      }
    }
    for (const auto& rec : faulty.retired_this_cycle()) {
      const u64 idx = compared++;
      if (idx >= golden.trace.size()) {
        overrun = true;  // retired past the golden window (timing shift)
        continue;
      }
      const vm::Retired& ref = golden.trace[idx];
      if (rec.pc != ref.pc) {
        // A control-flow violation is a *sustained* divergence of the retired
        // pc stream. A single isolated mismatch is a corrupted pc bookkeeping
        // field (e.g. a ROB pc bit), not a different instruction stream.
        if (prev_pc_mismatch) {
          record.lat_cfv = std::min(record.lat_cfv, idx);
        }
        prev_pc_mismatch = true;
        record.trace_diverged = true;
      } else {
        prev_pc_mismatch = false;
        if (!rec.same_effect(ref)) record.trace_diverged = true;
      }
    }
    for (const auto& ev : faulty.symptoms_this_cycle()) {
      const u64 latency =
          ev.retired_count >= base ? ev.retired_count - base : 0;
      switch (ev.kind) {
        case SymptomEvent::Kind::kException:
          record.lat_exception = std::min(record.lat_exception, latency);
          break;
        case SymptomEvent::Kind::kHighConfMispredict:
          record.lat_hiconf = std::min(record.lat_hiconf, latency);
          break;
        case SymptomEvent::Kind::kWatchdog:
          record.lat_deadlock = std::min(record.lat_deadlock, latency);
          break;
        case SymptomEvent::Kind::kIllegalFlow:
          record.lat_illegal_flow = std::min(record.lat_illegal_flow, latency);
          break;
        case SymptomEvent::Kind::kCacheMissBurst:
          record.lat_cache_burst = std::min(record.lat_cache_burst, latency);
          break;
        default:
          break;
      }
    }
    if (shortcut_eligible && next_cp < golden.checkpoint_offsets.size() &&
        c + 1 == golden.checkpoint_offsets[next_cp]) {
      const std::size_t cp = next_cp++;
      if (!overrun && compared == golden.trace_len_at[cp] &&
          faulty.state_equal(golden.checkpoints[cp])) {
        converged = true;
        converged_offset = c + 1;
        break;
      }
    }
  }

  if (converged) {
    // From converged_offset on, the faulty machine's cycles are bit-identical
    // to golden's: the remaining retire stream matches the golden trace
    // record-for-record (no new divergence, no overrun, and the carried
    // prev_pc_mismatch can never complete a sustained mismatch), the
    // remaining symptoms are golden's own, and the end-of-window state IS
    // golden.end_core. The catchup phase is a no-op: the converged machine
    // reaches exactly the golden retirement boundary inside the window.
    for (const auto& gs : golden.symptoms) {
      if (gs.cycle_offset <= converged_offset) continue;
      const u64 latency =
          gs.ev.retired_count >= base ? gs.ev.retired_count - base : 0;
      switch (gs.ev.kind) {
        case SymptomEvent::Kind::kException:
          record.lat_exception = std::min(record.lat_exception, latency);
          break;
        case SymptomEvent::Kind::kHighConfMispredict:
          record.lat_hiconf = std::min(record.lat_hiconf, latency);
          break;
        case SymptomEvent::Kind::kWatchdog:
          record.lat_deadlock = std::min(record.lat_deadlock, latency);
          break;
        case SymptomEvent::Kind::kIllegalFlow:
          record.lat_illegal_flow = std::min(record.lat_illegal_flow, latency);
          break;
        case SymptomEvent::Kind::kCacheMissBurst:
          record.lat_cache_burst = std::min(record.lat_cache_burst, latency);
          break;
        default:
          break;
      }
    }
    record.end_status = golden.end_core.status();
    if (record.end_status == Core::Status::kFaulted ||
        record.end_status == Core::Status::kDeadlocked) {
      record.arch_corrupt_at_end = true;
      return record;
    }
    record.arch_corrupt_at_end = false;
    if (!record.trace_diverged) {
      // Effect-identical prefix plus convergence: the end-of-window machine
      // equals golden.end_core bit for bit.
      record.uarch_state_equal = true;
      record.live_state_diff = false;
    }
    // Diverged-then-converged (corrupt-then-overwritten): arch state, memory,
    // output and the retirement boundary all match golden at the window end,
    // so the catchup comparison below would find no corruption.
    return record;
  }

  record.end_status = faulty.status();

  if (faulty.status() == Core::Status::kFaulted ||
      faulty.status() == Core::Status::kDeadlocked) {
    record.arch_corrupt_at_end = true;
    return record;
  }

  if (!record.trace_diverged && !overrun) {
    // Effect-identical prefix: no architectural corruption was committed.
    // Compare full microarchitectural state against the golden end to
    // separate masked / latent / other.
    record.arch_corrupt_at_end = false;
    if (faulty.state_equal(golden.end_core)) {
      // Bit-identical machine: the registered-state diff is empty by
      // inclusion (state_equal compares a superset of the registry's fields
      // plus the memory digest), so skip the expensive field-by-field walk.
      record.uarch_state_equal = true;
      record.live_state_diff = false;
    } else {
      const auto diff = reg.diff(faulty, golden.end_core);
      record.uarch_state_equal = !diff.any && faulty.memory().digest() ==
                                                  golden.end_core.memory().digest();
      record.live_state_diff = diff.any_live;
    }
    return record;
  }

  // Diverged or timing-shifted: let the faulty machine catch up to the golden
  // retirement boundary, then compare architectural state (the paper's
  // refined failure definition: corrupt-then-overwritten is not a failure).
  const u64 target = golden.base_retired + golden.trace.size();
  for (u64 c = 0; c < catchup_cycles && faulty.running() &&
                  faulty.retired_count() < target;
       ++c) {
    faulty.cycle();
    for (const auto& ev : faulty.symptoms_this_cycle()) {
      const u64 latency = ev.retired_count >= base ? ev.retired_count - base : 0;
      if (ev.kind == SymptomEvent::Kind::kException) {
        record.lat_exception = std::min(record.lat_exception, latency);
      } else if (ev.kind == SymptomEvent::Kind::kWatchdog) {
        record.lat_deadlock = std::min(record.lat_deadlock, latency);
      }
    }
  }
  record.end_status = faulty.status();
  if (faulty.status() == Core::Status::kFaulted ||
      faulty.status() == Core::Status::kDeadlocked) {
    record.arch_corrupt_at_end = true;
    return record;
  }

  const vm::ArchSnapshot fa = faulty.arch_snapshot();
  const vm::ArchSnapshot ga = golden.end_core.arch_snapshot();
  record.arch_corrupt_at_end =
      faulty.retired_count() != target || !(fa == ga) ||
      faulty.memory().digest() != golden.end_core.memory().digest() ||
      faulty.output() != golden.end_core.output();
  return record;
}

// Clean-run cycle counts are cached across campaigns (the figure binaries
// re-run campaigns over the same workloads). Keyed by (workload, config) —
// timing knobs change the cycle count — and mutex-guarded so concurrent
// campaigns cannot race the insert.
std::string core_config_key(const uarch::CoreConfig& c) {
  std::ostringstream key;
  key << c.alu_latency << ',' << c.mul_latency << ',' << c.div_latency << ','
      << c.agen_latency << ',' << c.l1d_hit_latency << ',' << c.l1d_miss_latency
      << ',' << c.l1i_miss_penalty << ',' << c.store_forward_latency << ','
      << c.watchdog_cycles << ',' << c.jrs_threshold << ',' << c.jrs_counter_max
      << ',' << c.trap_on_exception << ',' << c.all_mispredicts_high_conf << ','
      << c.illegal_flow_watchdog << ',' << c.cache_burst_symptom << ','
      << c.cache_burst_window << ',' << c.cache_burst_threshold;
  return key.str();
}

struct CycleCountStore {
  Mutex mutex;
  std::map<std::pair<std::string, std::string>, u64> cache
      RESTORE_GUARDED_BY(mutex);
};

u64 clean_cycle_count(const workloads::Workload& wl,
                      const uarch::CoreConfig& config) {
  static CycleCountStore store;
  const auto key = std::make_pair(wl.name, core_config_key(config));
  {
    MutexLock lock(store.mutex);
    const auto it = store.cache.find(key);
    if (it != store.cache.end()) return it->second;
  }
  Core probe(wl.program, config);
  probe.run(100'000'000);
  const u64 cycles = probe.cycle_count();
  MutexLock lock(store.mutex);
  return store.cache.emplace(key, cycles).first->second;
}

// Bounded, mutex-sharded LRU of golden continuations, shared across shards
// and campaigns. A continuation is a pure function of its key — (core
// config, workload, injection cycle, monitor window, checkpoint flag) — so a
// cache hit is transparent; a miss is built OUTSIDE the shard lock (two
// threads may briefly build the same continuation; both builds are
// deterministic and identical, and the first insert wins).
class ContinuationCache {
 public:
  using Value = std::shared_ptr<const GoldenContinuation>;

  Value get_or_build(const std::string& key, std::size_t capacity,
                     const std::function<Value()>& build) {
    Shard& shard = shards_[shard_index(key)];
    {
      MutexLock lock(shard.mutex);
      for (auto& entry : shard.entries) {
        if (entry.key == key) {
          entry.tick = ++shard.tick;
          hits_.fetch_add(1, std::memory_order_relaxed);
          return entry.value;
        }
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    Value built = build();
    const std::size_t per_shard = std::max<std::size_t>(1, capacity / kShards);
    MutexLock lock(shard.mutex);
    for (auto& entry : shard.entries) {
      if (entry.key == key) {  // raced: share the winner's continuation
        entry.tick = ++shard.tick;
        return entry.value;
      }
    }
    while (shard.entries.size() >= per_shard) {
      std::size_t oldest = 0;
      for (std::size_t i = 1; i < shard.entries.size(); ++i) {
        if (shard.entries[i].tick < shard.entries[oldest].tick) oldest = i;
      }
      shard.entries.erase(shard.entries.begin() +
                          static_cast<std::ptrdiff_t>(oldest));
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.entries.push_back({key, built, ++shard.tick});
    return built;
  }

  ContinuationCacheStats stats() const noexcept {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            evictions_.load(std::memory_order_relaxed)};
  }

  void clear() noexcept {
    for (auto& shard : shards_) {
      MutexLock lock(shard.mutex);
      shard.entries.clear();
      shard.tick = 0;
    }
  }

 private:
  static constexpr std::size_t kShards = 8;

  struct Entry {
    std::string key;
    Value value;
    u64 tick = 0;
  };
  struct Shard {
    Mutex mutex;
    std::vector<Entry> entries RESTORE_GUARDED_BY(mutex);
    u64 tick RESTORE_GUARDED_BY(mutex) = 0;
  };

  static std::size_t shard_index(const std::string& key) noexcept {
    return static_cast<std::size_t>(fnv1a(key)) % kShards;
  }

  std::array<Shard, kShards> shards_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> evictions_{0};
};

ContinuationCache& continuation_cache() {
  static ContinuationCache cache;
  return cache;
}

}  // namespace

ContinuationCacheStats continuation_cache_stats() noexcept {
  return continuation_cache().stats();
}

void clear_continuation_cache() noexcept { continuation_cache().clear(); }

UarchTrialRecord run_uarch_trial(const Core& golden_at_point,
                                 const uarch::BitRef& bit, u64 monitor_cycles,
                                 u64 catchup_cycles,
                                 const ResourceBudget& trial_budget) {
  InjectionPlan plan;
  plan.bits.push_back(bit);
  return run_uarch_plan_trial(golden_at_point, plan, monitor_cycles,
                              catchup_cycles, trial_budget);
}

UarchTrialRecord run_uarch_plan_trial(const Core& golden_at_point,
                                      const InjectionPlan& plan,
                                      u64 monitor_cycles, u64 catchup_cycles,
                                      const ResourceBudget& trial_budget) {
  const bool with_checkpoints =
      trial_speed().convergence_shortcut && trial_budget.unlimited();
  GoldenContinuation golden(golden_at_point, monitor_cycles, with_checkpoints);
  Core faulty = golden_at_point;
  return run_trial(faulty, golden, plan, monitor_cycles, catchup_cycles,
                   trial_budget);
}

namespace {

// Record for a trial the containment boundary aborted: the injected bit is
// known (it was sampled before execution), every observation field keeps its
// "never fired" default, and the abort tag/message carry the cause.
UarchTrialRecord aborted_uarch_record(const uarch::BitRef& bit,
                                      TrialAbortInfo info) {
  const StateRegistry& reg = StateRegistry::instance();
  UarchTrialRecord record;
  record.bit = bit;
  record.storage = reg.field(bit).storage;
  record.protection = reg.field(bit).protection;
  record.field_name = reg.field(bit).name;
  record.abort_type = std::move(info.type);
  record.abort_message = std::move(info.message);
  record.abort_resource = info.resource_exhausted;
  return record;
}

// One shard: a contiguous trial range of one workload, grouped into
// injection points of `trials_per_point` trials. The shard samples its
// injection cycles and bits from its own RNG stream, advances its own golden
// core through the sorted points (snapshotting each — a cheap COW fork) and
// runs the point's trials against the shared continuation. Shards are
// independent, so the campaign parallelizes across shards with no
// cross-shard state at all.
std::vector<UarchTrialRecord> run_uarch_shard(const UarchCampaignConfig& config,
                                              const ShardSpec& shard,
                                              u64 total_cycles) {
  const StateRegistry& reg = StateRegistry::instance();
  const workloads::Workload& wl = workloads::by_name(shard.workload);
  Rng rng(shard.seed);

  const u64 per_point = std::max<u64>(1, config.trials_per_point);
  const u64 points = std::max<u64>(1, (shard.trial_count + per_point - 1) / per_point);

  // Injection points in [5%, 85%] of the clean run, sorted so the golden
  // core can be advanced incrementally within the shard.
  std::vector<u64> cycles;
  cycles.reserve(points);
  const u64 lo = total_cycles / 20;
  const u64 hi = std::max(lo + 1, total_cycles * 17 / 20);
  for (u64 p = 0; p < points; ++p) cycles.push_back(rng.range(lo, hi));
  std::sort(cycles.begin(), cycles.end());

  // All randomness is drawn in a fixed order (cycles, then plans) before any
  // trial executes, so the shard's draws never depend on machine behaviour.
  // The default single-bit model draws its bits from the primary shard stream
  // exactly as it always has (default traces stay byte-identical); every
  // other model draws from its own substream keyed by the model tag, so the
  // plan sequence is a pure function of (shard seed, model) regardless of
  // worker count or resume boundaries.
  const FaultModelConfig& fm = config.fault_model;
  const bool default_model = is_default_fault_model(fm);
  std::vector<std::vector<InjectionPlan>> plans(points);
  u64 planned = 0;
  if (default_model) {
    for (u64 p = 0; p < points; ++p) {
      while (plans[p].size() < per_point && planned < shard.trial_count) {
        InjectionPlan plan;
        plan.bits.push_back(config.latches_only
                                ? reg.sample(rng, uarch::StorageClass::kLatch)
                                : reg.sample(rng));
        plans[p].push_back(std::move(plan));
        ++planned;
      }
    }
  } else {
    Rng model_rng(model_stream_seed(shard.seed, static_cast<u64>(fm.model)));
    for (u64 p = 0; p < points; ++p) {
      while (plans[p].size() < per_point && planned < shard.trial_count) {
        plans[p].push_back(
            sample_injection_plan(fm, reg, config.latches_only, model_rng));
        ++planned;
      }
    }
  }

  // Trial-speed fast paths are snapshotted once per shard; all of them keep
  // the produced records byte-identical (see trial_speed.hpp).
  const TrialSpeedConfig speed = trial_speed();
  const bool with_checkpoints =
      speed.convergence_shortcut && config.trial_budget.unlimited();

  std::vector<UarchTrialRecord> records;
  records.reserve(shard.trial_count);
  Core golden(wl.program, config.core_config);
  TrialArena<Core> arena;
  for (u64 p = 0; p < points; ++p) {
    while (golden.running() && golden.cycle_count() < cycles[p]) golden.cycle();
    if (!golden.running()) break;  // sampled past program end; drop the tail
    const Core at_point = golden;

    // The continuation is a pure function of this key, so it is shared
    // across every bit of this point, across shards that sampled the same
    // cycle, and across repeated campaigns in one process.
    std::shared_ptr<const GoldenContinuation> shared;
    std::optional<GoldenContinuation> local;
    if (speed.continuation_cache) {
      std::ostringstream key;
      key << core_config_key(config.core_config) << ';' << wl.name << ';'
          << at_point.cycle_count() << ';' << config.monitor_cycles << ';'
          << (with_checkpoints ? 1 : 0);
      shared = continuation_cache().get_or_build(
          key.str(), speed.continuation_cache_capacity, [&] {
            // simlint: allow(PERF-ALLOC) -- built once per cache miss, amortised across the point's trials
            return std::make_shared<const GoldenContinuation>(
                at_point, config.monitor_cycles, with_checkpoints);
          });
    } else {
      local.emplace(at_point, config.monitor_cycles, with_checkpoints);
    }
    const GoldenContinuation& continuation = shared ? *shared : *local;

    for (const auto& plan : plans[p]) {
      UarchTrialRecord record;
      const auto abort = contain_trial([&] {
        if (!speed.trial_arena) arena.clear();
        Core& faulty = arena.reset_to(at_point);
        record = run_trial(faulty, continuation, plan, config.monitor_cycles,
                           config.catchup_cycles, config.trial_budget);
      });
      if (abort) record = aborted_uarch_record(plan.bits.front(), *abort);
      if (!default_model) {
        record.model = std::string(to_string(fm.model));
        record.extra_bits.clear();
        for (std::size_t i = 1; i < plan.bits.size(); ++i) {
          record.extra_bits.push_back(pack_bit_ref(plan.bits[i]));
        }
        record.upset = plan.upset;
      }
      record.workload = wl.name;
      records.push_back(std::move(record));
    }
  }
  return records;
}

}  // namespace

// Public shard entry point: probes the workload's clean cycle count itself
// (cached process-wide), then delegates to the planner-driven shard body.
std::vector<UarchTrialRecord> run_uarch_shard(const UarchCampaignConfig& config,
                                              const ShardSpec& shard) {
  return run_uarch_shard(config, shard,
                         clean_cycle_count(workloads::by_name(shard.workload),
                                           config.core_config));
}

u64 config_hash(const UarchCampaignConfig& config) {
  std::string key = "uarch;";
  key += std::to_string(config.trials_per_workload) + ';';
  key += std::to_string(config.trials_per_point) + ';';
  key += std::to_string(config.monitor_cycles) + ';';
  key += std::to_string(config.catchup_cycles) + ';';
  key += std::to_string(config.latches_only ? 1 : 0) + ';';
  for (const auto& name : config.workloads) key += name + ',';
  key += ';' + core_config_key(config.core_config);
  // Appended only when set, so pre-budget manifests keep resuming cleanly.
  if (!config.trial_budget.unlimited()) {
    key += ";budget=" + budget_identity_key(config.trial_budget);
  }
  // Same appended-only discipline for the fault_model: the default single-bit
  // model hashes exactly as before the subsystem existed.
  if (!is_default_fault_model(config.fault_model)) {
    key += ";fmodel=" + fault_model_identity_key(config.fault_model);
  }
  return fnv1a(key, fnv1a(std::to_string(config.seed)));
}

UarchCampaignResult run_uarch_campaign(const UarchCampaignConfig& config,
                                       const CampaignRunOptions& options,
                                       CampaignTelemetry* telemetry) {
  validate_fault_model(config.fault_model, /*vm_campaign=*/false);
  const StateRegistry& reg = StateRegistry::instance();
  UarchCampaignResult result;
  result.eligible_bits = config.latches_only
                             ? reg.total_bits(uarch::StorageClass::kLatch)
                             : reg.total_bits();

  std::vector<std::string> names;
  if (config.workloads.empty()) {
    for (const auto& wl : workloads::all()) names.push_back(wl.name);
  } else {
    names = config.workloads;
  }

  // Warm the clean-run cycle cache serially: every shard of a workload needs
  // its total cycle count, and probing it once up front keeps concurrent
  // shards from racing to run the same probe.
  std::map<std::string, u64> total_cycles;
  for (const auto& name : names) {
    total_cycles[name] = clean_cycle_count(workloads::by_name(name),
                                           config.core_config);
  }

  const auto shards = plan_shards(config.seed, names, config.trials_per_workload,
                                  options.shard_trials);

  CampaignManifest identity;
  identity.kind = "uarch";
  identity.config_hash = config_hash(config);
  identity.seed = config.seed;
  identity.shard_trials =
      options.shard_trials == 0 ? kDefaultShardTrials : options.shard_trials;

  result.trials = run_sharded_campaign<UarchTrialRecord>(
      shards, std::move(identity), options,
      [&config, &total_cycles](const ShardSpec& shard) {
        return run_uarch_shard(config, shard, total_cycles.at(shard.workload));
      },
      uarch_trial_to_jsonl, uarch_trial_from_jsonl,
      [](const UarchTrialRecord& trial) {
        return std::string(to_string(classify_trial(
            trial, DetectorModel::kPerfectCfv, ProtectionModel::kBaseline, 100)));
      },
      telemetry);
  return result;
}

UarchCampaignResult run_uarch_campaign(const UarchCampaignConfig& config) {
  CampaignRunOptions options;
  options.workers = config.workers;
  return run_uarch_campaign(config, options);
}

}  // namespace restore::faultinject
