#include "faultinject/uarch_campaign.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"

namespace restore::faultinject {

using uarch::Core;
using uarch::StateRegistry;
using uarch::SymptomEvent;

namespace {

// Golden continuation from an injection point: the retired trace over the
// monitor window plus the golden machine state at the end of the window.
struct GoldenContinuation {
  std::vector<vm::Retired> trace;
  Core end_core;
  u64 base_retired = 0;

  explicit GoldenContinuation(const Core& at_point, u64 monitor_cycles)
      : end_core(at_point), base_retired(at_point.retired_count()) {
    trace.reserve(monitor_cycles);
    for (u64 c = 0; c < monitor_cycles && end_core.running(); ++c) {
      end_core.cycle();
      for (const auto& rec : end_core.retired_this_cycle()) trace.push_back(rec);
    }
  }
};

UarchTrialRecord run_trial(const Core& golden_at_point,
                           const GoldenContinuation& golden,
                           const uarch::BitRef& bit, u64 monitor_cycles,
                           u64 catchup_cycles) {
  const StateRegistry& reg = StateRegistry::instance();

  UarchTrialRecord record;
  record.bit = bit;
  record.storage = reg.field(bit).storage;
  record.protection = reg.field(bit).protection;
  record.field_name = reg.field(bit).name;

  Core faulty = golden_at_point;
  reg.flip(faulty, bit);
  const u64 base = faulty.retired_count();

  u64 compared = 0;
  bool overrun = false;
  bool prev_pc_mismatch = false;
  for (u64 c = 0; c < monitor_cycles && faulty.running(); ++c) {
    faulty.cycle();
    for (const auto& rec : faulty.retired_this_cycle()) {
      const u64 idx = compared++;
      if (idx >= golden.trace.size()) {
        overrun = true;  // retired past the golden window (timing shift)
        continue;
      }
      const vm::Retired& ref = golden.trace[idx];
      if (rec.pc != ref.pc) {
        // A control-flow violation is a *sustained* divergence of the retired
        // pc stream. A single isolated mismatch is a corrupted pc bookkeeping
        // field (e.g. a ROB pc bit), not a different instruction stream.
        if (prev_pc_mismatch) {
          record.lat_cfv = std::min(record.lat_cfv, idx);
        }
        prev_pc_mismatch = true;
        record.trace_diverged = true;
      } else {
        prev_pc_mismatch = false;
        if (!rec.same_effect(ref)) record.trace_diverged = true;
      }
    }
    for (const auto& ev : faulty.symptoms_this_cycle()) {
      const u64 latency =
          ev.retired_count >= base ? ev.retired_count - base : 0;
      switch (ev.kind) {
        case SymptomEvent::Kind::kException:
          record.lat_exception = std::min(record.lat_exception, latency);
          break;
        case SymptomEvent::Kind::kHighConfMispredict:
          record.lat_hiconf = std::min(record.lat_hiconf, latency);
          break;
        case SymptomEvent::Kind::kWatchdog:
          record.lat_deadlock = std::min(record.lat_deadlock, latency);
          break;
        case SymptomEvent::Kind::kIllegalFlow:
          record.lat_illegal_flow = std::min(record.lat_illegal_flow, latency);
          break;
        case SymptomEvent::Kind::kCacheMissBurst:
          record.lat_cache_burst = std::min(record.lat_cache_burst, latency);
          break;
        default:
          break;
      }
    }
  }

  record.end_status = faulty.status();

  if (faulty.status() == Core::Status::kFaulted ||
      faulty.status() == Core::Status::kDeadlocked) {
    record.arch_corrupt_at_end = true;
    return record;
  }

  if (!record.trace_diverged && !overrun) {
    // Effect-identical prefix: no architectural corruption was committed.
    // Compare full microarchitectural state against the golden end to
    // separate masked / latent / other.
    record.arch_corrupt_at_end = false;
    const auto diff = reg.diff(faulty, golden.end_core);
    record.uarch_state_equal =
        !diff.any && faulty.memory().digest() == golden.end_core.memory().digest();
    record.live_state_diff = diff.any_live;
    return record;
  }

  // Diverged or timing-shifted: let the faulty machine catch up to the golden
  // retirement boundary, then compare architectural state (the paper's
  // refined failure definition: corrupt-then-overwritten is not a failure).
  const u64 target = golden.base_retired + golden.trace.size();
  for (u64 c = 0; c < catchup_cycles && faulty.running() &&
                  faulty.retired_count() < target;
       ++c) {
    faulty.cycle();
    for (const auto& ev : faulty.symptoms_this_cycle()) {
      const u64 latency = ev.retired_count >= base ? ev.retired_count - base : 0;
      if (ev.kind == SymptomEvent::Kind::kException) {
        record.lat_exception = std::min(record.lat_exception, latency);
      } else if (ev.kind == SymptomEvent::Kind::kWatchdog) {
        record.lat_deadlock = std::min(record.lat_deadlock, latency);
      }
    }
  }
  record.end_status = faulty.status();
  if (faulty.status() == Core::Status::kFaulted ||
      faulty.status() == Core::Status::kDeadlocked) {
    record.arch_corrupt_at_end = true;
    return record;
  }

  const vm::ArchSnapshot fa = faulty.arch_snapshot();
  const vm::ArchSnapshot ga = golden.end_core.arch_snapshot();
  record.arch_corrupt_at_end =
      faulty.retired_count() != target || !(fa == ga) ||
      faulty.memory().digest() != golden.end_core.memory().digest() ||
      faulty.output() != golden.end_core.output();
  return record;
}

// Clean-run cycle counts are cached across campaigns (the figure binaries
// re-run campaigns over the same workloads). Keyed by (workload, config) —
// timing knobs change the cycle count — and mutex-guarded so concurrent
// campaigns cannot race the insert.
std::string core_config_key(const uarch::CoreConfig& c) {
  std::ostringstream key;
  key << c.alu_latency << ',' << c.mul_latency << ',' << c.div_latency << ','
      << c.agen_latency << ',' << c.l1d_hit_latency << ',' << c.l1d_miss_latency
      << ',' << c.l1i_miss_penalty << ',' << c.store_forward_latency << ','
      << c.watchdog_cycles << ',' << c.jrs_threshold << ',' << c.jrs_counter_max
      << ',' << c.trap_on_exception << ',' << c.all_mispredicts_high_conf << ','
      << c.illegal_flow_watchdog << ',' << c.cache_burst_symptom << ','
      << c.cache_burst_window << ',' << c.cache_burst_threshold;
  return key.str();
}

u64 clean_cycle_count(const workloads::Workload& wl,
                      const uarch::CoreConfig& config) {
  static std::mutex mutex;
  static std::map<std::pair<std::string, std::string>, u64> cache;
  const auto key = std::make_pair(wl.name, core_config_key(config));
  {
    std::lock_guard lock(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  Core probe(wl.program, config);
  probe.run(100'000'000);
  const u64 cycles = probe.cycle_count();
  std::lock_guard lock(mutex);
  return cache.emplace(key, cycles).first->second;
}

}  // namespace

UarchTrialRecord run_uarch_trial(const Core& golden_at_point,
                                 const uarch::BitRef& bit, u64 monitor_cycles,
                                 u64 catchup_cycles) {
  GoldenContinuation golden(golden_at_point, monitor_cycles);
  return run_trial(golden_at_point, golden, bit, monitor_cycles, catchup_cycles);
}

UarchCampaignResult run_uarch_campaign(const UarchCampaignConfig& config) {
  const StateRegistry& reg = StateRegistry::instance();
  UarchCampaignResult result;
  result.eligible_bits = config.latches_only
                             ? reg.total_bits(uarch::StorageClass::kLatch)
                             : reg.total_bits();
  Rng rng(config.seed);

  std::vector<const workloads::Workload*> selected;
  if (config.workloads.empty()) {
    for (const auto& wl : workloads::all()) selected.push_back(&wl);
  } else {
    for (const auto& name : config.workloads) {
      selected.push_back(&workloads::by_name(name));
    }
  }

  // One pool serves the whole campaign (threads are spawned once, not
  // re-spawned per workload).
  ThreadPool pool(config.workers);

  for (const workloads::Workload* wl : selected) {
    const u64 total_cycles = clean_cycle_count(*wl, config.core_config);

    const u64 points =
        std::max<u64>(1, (config.trials_per_workload + config.trials_per_point - 1) /
                             config.trials_per_point);
    // Injection points in [5%, 85%] of the clean run, sorted so the golden
    // core can be advanced incrementally.
    std::vector<u64> cycles;
    cycles.reserve(points);
    const u64 lo = total_cycles / 20;
    const u64 hi = std::max(lo + 1, total_cycles * 17 / 20);
    for (u64 p = 0; p < points; ++p) cycles.push_back(rng.range(lo, hi));
    std::sort(cycles.begin(), cycles.end());

    // Trial fan-out pipelines across injection points: for each point the
    // golden core is snapshotted (a cheap COW fork), the continuation is
    // built, and the point's trials are submitted to the pool — then the
    // main thread immediately advances the golden core to the next point
    // while workers chew on the backlog. The only barrier is at the end of
    // the workload. Each trial writes a pre-assigned slot, so results are
    // identical for any worker count.
    std::deque<std::vector<UarchTrialRecord>> point_records;  // stable refs
    Core golden(wl->program, config.core_config);
    u64 done = 0;
    for (u64 p = 0; p < points && done < config.trials_per_workload; ++p) {
      while (golden.running() && golden.cycle_count() < cycles[p]) golden.cycle();
      if (!golden.running()) break;
      const auto at_point = std::make_shared<const Core>(golden);
      const auto continuation = std::make_shared<const GoldenContinuation>(
          *at_point, config.monitor_cycles);

      // Pre-sample the point's bits sequentially so results are independent
      // of the worker count, then fan the trials out.
      std::vector<uarch::BitRef> bits;
      while (bits.size() < config.trials_per_point &&
             done + bits.size() < config.trials_per_workload) {
        bits.push_back(config.latches_only
                           ? reg.sample(rng, uarch::StorageClass::kLatch)
                           : reg.sample(rng));
      }
      done += bits.size();
      auto& records = point_records.emplace_back(bits.size());
      for (std::size_t t = 0; t < bits.size(); ++t) {
        pool.submit([&records, t, bit = bits[t], at_point, continuation,
                     monitor = config.monitor_cycles,
                     catchup = config.catchup_cycles] {
          records[t] = run_trial(*at_point, *continuation, bit, monitor, catchup);
        });
      }
    }
    pool.wait_idle();
    for (auto& records : point_records) {
      for (auto& record : records) {
        record.workload = wl->name;
        result.trials.push_back(std::move(record));
      }
    }
  }
  return result;
}

}  // namespace restore::faultinject
