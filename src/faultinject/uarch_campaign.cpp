#include "faultinject/uarch_campaign.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/containment.hpp"
#include "faultinject/orchestrator.hpp"
#include "vm/memory.hpp"

namespace restore::faultinject {

using uarch::Core;
using uarch::StateRegistry;
using uarch::SymptomEvent;

namespace {

// Golden continuation from an injection point: the retired trace over the
// monitor window plus the golden machine state at the end of the window.
struct GoldenContinuation {
  std::vector<vm::Retired> trace;
  Core end_core;
  u64 base_retired = 0;

  explicit GoldenContinuation(const Core& at_point, u64 monitor_cycles)
      : end_core(at_point), base_retired(at_point.retired_count()) {
    trace.reserve(monitor_cycles);
    for (u64 c = 0; c < monitor_cycles && end_core.running(); ++c) {
      end_core.cycle();
      for (const auto& rec : end_core.retired_this_cycle()) trace.push_back(rec);
    }
  }
};

// Page cap implied by a budget (the tighter of max_pages and max_bytes).
u64 effective_page_cap(const ResourceBudget& budget) {
  u64 cap = budget.max_pages;
  if (budget.max_bytes != 0) {
    const u64 byte_pages = (budget.max_bytes + vm::kPageBytes - 1) / vm::kPageBytes;
    cap = cap == 0 ? byte_pages : std::min(cap, byte_pages);
  }
  return cap;
}

UarchTrialRecord run_trial(const Core& golden_at_point,
                           const GoldenContinuation& golden,
                           const uarch::BitRef& bit, u64 monitor_cycles,
                           u64 catchup_cycles,
                           const ResourceBudget& trial_budget) {
  const StateRegistry& reg = StateRegistry::instance();

  UarchTrialRecord record;
  record.bit = bit;
  record.storage = reg.field(bit).storage;
  record.protection = reg.field(bit).protection;
  record.field_name = reg.field(bit).name;

  Core faulty = golden_at_point;
  reg.flip(faulty, bit);
  const u64 base = faulty.retired_count();

  // Budget limits are allowances *from the injection point*; the core checks
  // absolute counters, so translate before installing.
  if (!trial_budget.unlimited()) {
    ResourceBudget absolute = trial_budget;
    if (absolute.max_cycles != 0) absolute.max_cycles += faulty.cycle_count();
    if (absolute.max_retired != 0) absolute.max_retired += base;
    absolute.max_pages = effective_page_cap(trial_budget);
    absolute.max_bytes = 0;
    faulty.set_resource_budget(absolute);
  }

  u64 compared = 0;
  bool overrun = false;
  bool prev_pc_mismatch = false;
  for (u64 c = 0; c < monitor_cycles && faulty.running(); ++c) {
    faulty.cycle();
    for (const auto& rec : faulty.retired_this_cycle()) {
      const u64 idx = compared++;
      if (idx >= golden.trace.size()) {
        overrun = true;  // retired past the golden window (timing shift)
        continue;
      }
      const vm::Retired& ref = golden.trace[idx];
      if (rec.pc != ref.pc) {
        // A control-flow violation is a *sustained* divergence of the retired
        // pc stream. A single isolated mismatch is a corrupted pc bookkeeping
        // field (e.g. a ROB pc bit), not a different instruction stream.
        if (prev_pc_mismatch) {
          record.lat_cfv = std::min(record.lat_cfv, idx);
        }
        prev_pc_mismatch = true;
        record.trace_diverged = true;
      } else {
        prev_pc_mismatch = false;
        if (!rec.same_effect(ref)) record.trace_diverged = true;
      }
    }
    for (const auto& ev : faulty.symptoms_this_cycle()) {
      const u64 latency =
          ev.retired_count >= base ? ev.retired_count - base : 0;
      switch (ev.kind) {
        case SymptomEvent::Kind::kException:
          record.lat_exception = std::min(record.lat_exception, latency);
          break;
        case SymptomEvent::Kind::kHighConfMispredict:
          record.lat_hiconf = std::min(record.lat_hiconf, latency);
          break;
        case SymptomEvent::Kind::kWatchdog:
          record.lat_deadlock = std::min(record.lat_deadlock, latency);
          break;
        case SymptomEvent::Kind::kIllegalFlow:
          record.lat_illegal_flow = std::min(record.lat_illegal_flow, latency);
          break;
        case SymptomEvent::Kind::kCacheMissBurst:
          record.lat_cache_burst = std::min(record.lat_cache_burst, latency);
          break;
        default:
          break;
      }
    }
  }

  record.end_status = faulty.status();

  if (faulty.status() == Core::Status::kFaulted ||
      faulty.status() == Core::Status::kDeadlocked) {
    record.arch_corrupt_at_end = true;
    return record;
  }

  if (!record.trace_diverged && !overrun) {
    // Effect-identical prefix: no architectural corruption was committed.
    // Compare full microarchitectural state against the golden end to
    // separate masked / latent / other.
    record.arch_corrupt_at_end = false;
    const auto diff = reg.diff(faulty, golden.end_core);
    record.uarch_state_equal =
        !diff.any && faulty.memory().digest() == golden.end_core.memory().digest();
    record.live_state_diff = diff.any_live;
    return record;
  }

  // Diverged or timing-shifted: let the faulty machine catch up to the golden
  // retirement boundary, then compare architectural state (the paper's
  // refined failure definition: corrupt-then-overwritten is not a failure).
  const u64 target = golden.base_retired + golden.trace.size();
  for (u64 c = 0; c < catchup_cycles && faulty.running() &&
                  faulty.retired_count() < target;
       ++c) {
    faulty.cycle();
    for (const auto& ev : faulty.symptoms_this_cycle()) {
      const u64 latency = ev.retired_count >= base ? ev.retired_count - base : 0;
      if (ev.kind == SymptomEvent::Kind::kException) {
        record.lat_exception = std::min(record.lat_exception, latency);
      } else if (ev.kind == SymptomEvent::Kind::kWatchdog) {
        record.lat_deadlock = std::min(record.lat_deadlock, latency);
      }
    }
  }
  record.end_status = faulty.status();
  if (faulty.status() == Core::Status::kFaulted ||
      faulty.status() == Core::Status::kDeadlocked) {
    record.arch_corrupt_at_end = true;
    return record;
  }

  const vm::ArchSnapshot fa = faulty.arch_snapshot();
  const vm::ArchSnapshot ga = golden.end_core.arch_snapshot();
  record.arch_corrupt_at_end =
      faulty.retired_count() != target || !(fa == ga) ||
      faulty.memory().digest() != golden.end_core.memory().digest() ||
      faulty.output() != golden.end_core.output();
  return record;
}

// Clean-run cycle counts are cached across campaigns (the figure binaries
// re-run campaigns over the same workloads). Keyed by (workload, config) —
// timing knobs change the cycle count — and mutex-guarded so concurrent
// campaigns cannot race the insert.
std::string core_config_key(const uarch::CoreConfig& c) {
  std::ostringstream key;
  key << c.alu_latency << ',' << c.mul_latency << ',' << c.div_latency << ','
      << c.agen_latency << ',' << c.l1d_hit_latency << ',' << c.l1d_miss_latency
      << ',' << c.l1i_miss_penalty << ',' << c.store_forward_latency << ','
      << c.watchdog_cycles << ',' << c.jrs_threshold << ',' << c.jrs_counter_max
      << ',' << c.trap_on_exception << ',' << c.all_mispredicts_high_conf << ','
      << c.illegal_flow_watchdog << ',' << c.cache_burst_symptom << ','
      << c.cache_burst_window << ',' << c.cache_burst_threshold;
  return key.str();
}

u64 clean_cycle_count(const workloads::Workload& wl,
                      const uarch::CoreConfig& config) {
  static std::mutex mutex;
  static std::map<std::pair<std::string, std::string>, u64> cache;
  const auto key = std::make_pair(wl.name, core_config_key(config));
  {
    std::lock_guard lock(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  Core probe(wl.program, config);
  probe.run(100'000'000);
  const u64 cycles = probe.cycle_count();
  std::lock_guard lock(mutex);
  return cache.emplace(key, cycles).first->second;
}

}  // namespace

UarchTrialRecord run_uarch_trial(const Core& golden_at_point,
                                 const uarch::BitRef& bit, u64 monitor_cycles,
                                 u64 catchup_cycles,
                                 const ResourceBudget& trial_budget) {
  GoldenContinuation golden(golden_at_point, monitor_cycles);
  return run_trial(golden_at_point, golden, bit, monitor_cycles, catchup_cycles,
                   trial_budget);
}

namespace {

// Record for a trial the containment boundary aborted: the injected bit is
// known (it was sampled before execution), every observation field keeps its
// "never fired" default, and the abort tag/message carry the cause.
UarchTrialRecord aborted_uarch_record(const uarch::BitRef& bit,
                                      TrialAbortInfo info) {
  const StateRegistry& reg = StateRegistry::instance();
  UarchTrialRecord record;
  record.bit = bit;
  record.storage = reg.field(bit).storage;
  record.protection = reg.field(bit).protection;
  record.field_name = reg.field(bit).name;
  record.abort_type = std::move(info.type);
  record.abort_message = std::move(info.message);
  record.abort_resource = info.resource_exhausted;
  return record;
}

// One shard: a contiguous trial range of one workload, grouped into
// injection points of `trials_per_point` trials. The shard samples its
// injection cycles and bits from its own RNG stream, advances its own golden
// core through the sorted points (snapshotting each — a cheap COW fork) and
// runs the point's trials against the shared continuation. Shards are
// independent, so the campaign parallelizes across shards with no
// cross-shard state at all.
std::vector<UarchTrialRecord> run_uarch_shard(const UarchCampaignConfig& config,
                                              const ShardSpec& shard,
                                              u64 total_cycles) {
  const StateRegistry& reg = StateRegistry::instance();
  const workloads::Workload& wl = workloads::by_name(shard.workload);
  Rng rng(shard.seed);

  const u64 per_point = std::max<u64>(1, config.trials_per_point);
  const u64 points = std::max<u64>(1, (shard.trial_count + per_point - 1) / per_point);

  // Injection points in [5%, 85%] of the clean run, sorted so the golden
  // core can be advanced incrementally within the shard.
  std::vector<u64> cycles;
  cycles.reserve(points);
  const u64 lo = total_cycles / 20;
  const u64 hi = std::max(lo + 1, total_cycles * 17 / 20);
  for (u64 p = 0; p < points; ++p) cycles.push_back(rng.range(lo, hi));
  std::sort(cycles.begin(), cycles.end());

  // All randomness is drawn in a fixed order (cycles, then bits) before any
  // trial executes, so the shard's draws never depend on machine behaviour.
  std::vector<std::vector<uarch::BitRef>> bits(points);
  u64 planned = 0;
  for (u64 p = 0; p < points; ++p) {
    while (bits[p].size() < per_point && planned < shard.trial_count) {
      bits[p].push_back(config.latches_only
                            ? reg.sample(rng, uarch::StorageClass::kLatch)
                            : reg.sample(rng));
      ++planned;
    }
  }

  std::vector<UarchTrialRecord> records;
  records.reserve(shard.trial_count);
  Core golden(wl.program, config.core_config);
  for (u64 p = 0; p < points; ++p) {
    while (golden.running() && golden.cycle_count() < cycles[p]) golden.cycle();
    if (!golden.running()) break;  // sampled past program end; drop the tail
    const Core at_point = golden;
    const GoldenContinuation continuation(at_point, config.monitor_cycles);
    for (const auto& bit : bits[p]) {
      UarchTrialRecord record;
      const auto abort = contain_trial([&] {
        record = run_trial(at_point, continuation, bit, config.monitor_cycles,
                           config.catchup_cycles, config.trial_budget);
      });
      if (abort) record = aborted_uarch_record(bit, *abort);
      record.workload = wl.name;
      records.push_back(std::move(record));
    }
  }
  return records;
}

}  // namespace

// Public shard entry point: probes the workload's clean cycle count itself
// (cached process-wide), then delegates to the planner-driven shard body.
std::vector<UarchTrialRecord> run_uarch_shard(const UarchCampaignConfig& config,
                                              const ShardSpec& shard) {
  return run_uarch_shard(config, shard,
                         clean_cycle_count(workloads::by_name(shard.workload),
                                           config.core_config));
}

u64 config_hash(const UarchCampaignConfig& config) {
  std::string key = "uarch;";
  key += std::to_string(config.trials_per_workload) + ';';
  key += std::to_string(config.trials_per_point) + ';';
  key += std::to_string(config.monitor_cycles) + ';';
  key += std::to_string(config.catchup_cycles) + ';';
  key += std::to_string(config.latches_only ? 1 : 0) + ';';
  for (const auto& name : config.workloads) key += name + ',';
  key += ';' + core_config_key(config.core_config);
  // Appended only when set, so pre-budget manifests keep resuming cleanly.
  if (!config.trial_budget.unlimited()) {
    key += ";budget=" + budget_identity_key(config.trial_budget);
  }
  return fnv1a(key, fnv1a(std::to_string(config.seed)));
}

UarchCampaignResult run_uarch_campaign(const UarchCampaignConfig& config,
                                       const CampaignRunOptions& options,
                                       CampaignTelemetry* telemetry) {
  const StateRegistry& reg = StateRegistry::instance();
  UarchCampaignResult result;
  result.eligible_bits = config.latches_only
                             ? reg.total_bits(uarch::StorageClass::kLatch)
                             : reg.total_bits();

  std::vector<std::string> names;
  if (config.workloads.empty()) {
    for (const auto& wl : workloads::all()) names.push_back(wl.name);
  } else {
    names = config.workloads;
  }

  // Warm the clean-run cycle cache serially: every shard of a workload needs
  // its total cycle count, and probing it once up front keeps concurrent
  // shards from racing to run the same probe.
  std::map<std::string, u64> total_cycles;
  for (const auto& name : names) {
    total_cycles[name] = clean_cycle_count(workloads::by_name(name),
                                           config.core_config);
  }

  const auto shards = plan_shards(config.seed, names, config.trials_per_workload,
                                  options.shard_trials);

  CampaignManifest identity;
  identity.kind = "uarch";
  identity.config_hash = config_hash(config);
  identity.seed = config.seed;
  identity.shard_trials =
      options.shard_trials == 0 ? kDefaultShardTrials : options.shard_trials;

  result.trials = run_sharded_campaign<UarchTrialRecord>(
      shards, std::move(identity), options,
      [&config, &total_cycles](const ShardSpec& shard) {
        return run_uarch_shard(config, shard, total_cycles.at(shard.workload));
      },
      uarch_trial_to_jsonl, uarch_trial_from_jsonl,
      [](const UarchTrialRecord& trial) {
        return std::string(to_string(classify_trial(
            trial, DetectorModel::kPerfectCfv, ProtectionModel::kBaseline, 100)));
      },
      telemetry);
  return result;
}

UarchCampaignResult run_uarch_campaign(const UarchCampaignConfig& config) {
  CampaignRunOptions options;
  options.workers = config.workers;
  return run_uarch_campaign(config, options);
}

}  // namespace restore::faultinject
