// Post-campaign classification: turns raw trial records into the category
// shares plotted in Figures 4-6, for any checkpoint interval, detector model
// (perfect control-flow detection vs the realistic JRS-gated detector) and
// protection model (baseline vs the §5.2.2 "lhf" hardened pipeline).
#pragma once

#include <map>
#include <vector>

#include "faultinject/outcome.hpp"
#include "faultinject/uarch_campaign.hpp"

namespace restore::faultinject {

enum class DetectorModel : u8 {
  kPerfectCfv,          // Figure 4: every control-flow violation is detectable
  kJrsConfidence,       // Figure 5: only high-confidence mispredictions trigger
  kJrsPlusIllegalFlow,  // §5.2.1 extension: JRS + control-flow monitoring
                        // watchdog (requires CoreConfig::illegal_flow_watchdog
                        // during the campaign)
};

enum class ProtectionModel : u8 {
  kBaseline,  // Figures 4-5: unprotected pipeline
  kLhf,       // Figure 6: parity on control latches, ECC on key data stores
};

// Classify one trial for a given checkpoint interval, with the paper's
// precedence: deadlock > exception > cfv > sdc; non-failures split into
// masked / latent / other.
UarchOutcome classify_trial(const UarchTrialRecord& trial, DetectorModel detector,
                            ProtectionModel protection, u64 interval);

// Fraction of trials per category (sums to 1).
std::map<UarchOutcome, double> category_shares(
    const std::vector<UarchTrialRecord>& trials, DetectorModel detector,
    ProtectionModel protection, u64 interval);

// Raw failure probability with no detection/recovery at all: the paper's
// "~7% of injected faults propagate to some form of failure".
double failure_fraction(const std::vector<UarchTrialRecord>& trials,
                        ProtectionModel protection = ProtectionModel::kBaseline);

// Failure probability that slips past ReStore (sdc + latent categories) for
// a given interval — ~3.5% at interval 100 in the paper's Figure 5 setup,
// ~1% with the hardened pipeline (Figure 6).
double uncovered_fraction(const std::vector<UarchTrialRecord>& trials,
                          DetectorModel detector, ProtectionModel protection,
                          u64 interval);

// Mean-time-between-failures improvement over the unprotected baseline
// (paper headline: ~2x for ReStore alone, ~7x for lhf+ReStore).
double mtbf_improvement(const std::vector<UarchTrialRecord>& trials,
                        DetectorModel detector, ProtectionModel protection,
                        u64 interval);

}  // namespace restore::faultinject
