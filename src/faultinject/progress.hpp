// Structured campaign progress: the event type emitted by the sharded
// campaign orchestrator and the serialized sink those events flow through.
//
// Shards complete concurrently, so anything observing campaign progress —
// the stderr heartbeat, a --shard-stats writer, or the `restored` service
// multiplexing the same stream to socket subscribers — must see whole events
// in a single total order. ProgressSink provides that: one mutex guards both
// the formatted line written to the FILE* stream and the structured callback,
// so lines can never tear or interleave under high worker counts and every
// observer sees the same event sequence.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace restore::faultinject {

struct CampaignEvent {
  enum class Kind : u8 {
    kHeartbeat,      // periodic progress line (text carries the line)
    kShardDone,      // a shard committed to the trace (no line printed)
    kAttemptFailed,  // one failing attempt of a supervised shard
    kQuarantine,     // shard gave up after bounded retries (no line of its
                     // own; the last kAttemptFailed carried the error text)
    kComplete,       // terminal event: campaign run returned (no line)
  };
  Kind kind = Kind::kHeartbeat;
  std::string campaign_kind;  // "vm" | "uarch"
  u64 shard = 0;              // shard index (shard-scoped kinds)
  std::string workload;       // shard workload (shard-scoped kinds)
  u64 attempt = 0;            // attempts made so far (kAttemptFailed/kQuarantine)
  u64 attempts_max = 0;       // retry budget (1 + shard_retries)
  u64 shards_done = 0;
  u64 shards_total = 0;
  u64 trials_done = 0;
  u64 trials_total = 0;
  // Live throughput over this run's wall clock (fresh trials only; resumed
  // trials are excluded from both numerator and clock). Populated on every
  // event kind so subscribers need not difference counters themselves.
  double rate = 0.0;  // trials/sec
  std::string error;  // last attempt's what() (kAttemptFailed/kQuarantine)
  std::string text;   // formatted human line, no trailing newline; empty =
                      // nothing is printed for this event
};

// Invoked under the sink mutex, after the line (if any) reached the stream.
// Must not block on campaign work: every shard commit waits on this mutex.
using CampaignEventCallback = std::function<void(const CampaignEvent&)>;

class ProgressSink {
 public:
  // `stream` may be nullptr (no line output); `callback` may be empty.
  ProgressSink(std::FILE* stream, CampaignEventCallback callback);

  // Write event.text (if any) as one whole line and hand the event to the
  // callback, both under the same mutex.
  void emit(const CampaignEvent& event);

 private:
  Mutex mutex_;
  std::FILE* stream_ RESTORE_GUARDED_BY(mutex_);
  CampaignEventCallback callback_ RESTORE_GUARDED_BY(mutex_);
};

}  // namespace restore::faultinject
