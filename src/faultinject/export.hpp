// Campaign result export: CSV writers so campaign data can be re-analysed or
// plotted outside the bench binaries (gnuplot/pandas/etc), the matching
// readers (round-trip exact for every integer/flag column), and the
// per-shard wall-time stats surfaced by the campaign orchestrator.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "faultinject/classify.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"

namespace restore::faultinject {

// One row per trial: workload, field, storage, protection, event latencies,
// end-state flags, fault-model extras. Latency columns print empty cells for
// kNever; extra_bits prints the whole vector semicolon-separated.
void write_uarch_trials_csv(std::ostream& out,
                            const std::vector<UarchTrialRecord>& trials);

// One row per trial: workload, outcome, latency, injection site, fault-model
// extras (extra_bits semicolon-separated, upset flag).
void write_vm_trials_csv(std::ostream& out, const std::vector<VmTrialResult>& trials);

// Aggregated Figure 4/5/6 series: one row per checkpoint interval with the
// category shares for the given detector/protection model.
void write_category_series_csv(std::ostream& out,
                               const std::vector<UarchTrialRecord>& trials,
                               DetectorModel detector, ProtectionModel protection);

// Readers for the per-trial CSVs above. Every column except the header is an
// integer, flag or identifier, so parsing a written file reconstructs the
// trial list exactly (empty latency cells read back as kNever). Throws
// std::runtime_error on a malformed row.
std::vector<UarchTrialRecord> read_uarch_trials_csv(std::istream& in);
std::vector<VmTrialResult> read_vm_trials_csv(std::istream& in);

// Observability: one row per shard with its workload, trial count, wall time
// and throughput, plus whether the shard was resumed from a trace rather
// than re-run.
void write_shard_stats_csv(std::ostream& out, const std::vector<ShardStats>& shards);

// Per-fault-model outcome breakdown: one row per (model, outcome) pair with
// its trial count. Default-model trials (empty `model` field) report as
// "single". Rows are sorted by model then outcome, so the breakdown of a
// given trial set is byte-stable.
struct ModelBreakdownRow {
  std::string model;
  std::string outcome;
  u64 count = 0;
};

std::vector<ModelBreakdownRow> model_breakdown(const std::vector<VmTrialResult>& trials);
// Uarch trials are classified with the given detector/protection model and
// checkpoint interval (classify.hpp) before aggregation.
std::vector<ModelBreakdownRow> model_breakdown(const std::vector<UarchTrialRecord>& trials,
                                               DetectorModel detector,
                                               ProtectionModel protection,
                                               u64 interval);

// CSV round trip for the breakdown (model,outcome,count).
void write_model_breakdown_csv(std::ostream& out,
                               const std::vector<ModelBreakdownRow>& rows);
std::vector<ModelBreakdownRow> read_model_breakdown_csv(std::istream& in);

// Convenience: write to a file path (throws std::runtime_error on I/O error).
void write_uarch_trials_csv(const std::string& path,
                            const std::vector<UarchTrialRecord>& trials);
void write_vm_trials_csv(const std::string& path,
                         const std::vector<VmTrialResult>& trials);
void write_shard_stats_csv(const std::string& path,
                           const std::vector<ShardStats>& shards);

}  // namespace restore::faultinject
