// Campaign result export: CSV writers so campaign data can be re-analysed or
// plotted outside the bench binaries (gnuplot/pandas/etc).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "faultinject/classify.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"

namespace restore::faultinject {

// One row per trial: workload, field, storage, protection, event latencies,
// end-state flags. Latency columns print empty cells for kNever.
void write_uarch_trials_csv(std::ostream& out,
                            const std::vector<UarchTrialRecord>& trials);

// One row per trial: workload, outcome, latency, injection site.
void write_vm_trials_csv(std::ostream& out, const std::vector<VmTrialResult>& trials);

// Aggregated Figure 4/5/6 series: one row per checkpoint interval with the
// category shares for the given detector/protection model.
void write_category_series_csv(std::ostream& out,
                               const std::vector<UarchTrialRecord>& trials,
                               DetectorModel detector, ProtectionModel protection);

// Convenience: write to a file path (throws std::runtime_error on I/O error).
void write_uarch_trials_csv(const std::string& path,
                            const std::vector<UarchTrialRecord>& trials);
void write_vm_trials_csv(const std::string& path,
                         const std::vector<VmTrialResult>& trials);

}  // namespace restore::faultinject
