// Microarchitectural fault-injection campaign — the paper's §4/§5 studies
// (Figures 4, 5 and 6 and the §5.1.2 latch-only experiment).
//
// Each trial: warm the core to a random injection point, snapshot it (the
// Core has value semantics), flip one randomly selected eligible state bit,
// and monitor for up to `monitor_cycles` against the golden continuation —
// exactly the paper's methodology of comparing against both a golden
// latch-level model and an architectural simulator (§4.2). The trial records
// *all* detector events with their latencies; classification into the
// figures' categories happens afterwards (classify.hpp), so one campaign
// feeds Figure 4 (perfect cfv detection), Figure 5 (JRS-gated detection) and
// Figure 6 (hardened "lhf" pipeline) simultaneously.
#pragma once

#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "faultinject/fault_model.hpp"
#include "faultinject/outcome.hpp"
#include "uarch/core.hpp"
#include "uarch/state_registry.hpp"
#include "workloads/workloads.hpp"

namespace restore::faultinject {

struct UarchCampaignConfig {
  u64 seed = 0xC0FE;
  u64 trials_per_workload = 120;
  // Trials sharing one warmed snapshot (the paper uses ~250-300 injection
  // points for 12-13k trials).
  u64 trials_per_point = 8;
  // Cycles a trial is monitored after injection (paper: 10,000).
  u64 monitor_cycles = 10'000;
  // Additional catch-up budget when deciding end-of-trial architectural
  // corruption for timing-shifted runs.
  u64 catchup_cycles = 10'000;
  // Restrict injection to pipeline latches (the §5.1.2 study).
  bool latches_only = false;
  // Workload subset; empty = all seven.
  std::vector<std::string> workloads;
  // Machine configuration for all cores in the campaign (ablations override
  // detector behaviour here, e.g. all_mispredicts_high_conf).
  uarch::CoreConfig core_config;
  // Deterministic per-trial resource budget: max_cycles/max_retired are
  // *additional* allowance from the injection point, max_pages/max_bytes cap
  // the trial machine's mapped memory. Default (all zero) = unlimited, which
  // also keeps pre-budget campaign identity hashes unchanged.
  ResourceBudget trial_budget;
  // Fault model for every trial (fault_model.hpp). The default single-bit
  // model samples from the shard's primary RNG stream exactly as before, so
  // default campaigns stay byte-identical; non-default models draw their
  // plans from a per-shard model substream and contribute to config_hash.
  FaultModelConfig fault_model;
  // Worker threads for trial execution (0 = run inline). Results are
  // deterministic regardless: bits are pre-sampled sequentially, trials are
  // independent and write pre-assigned result slots. Trial fan-out is
  // pipelined: workers run trials for earlier injection points while the
  // main thread advances the golden core to later ones.
  std::size_t workers = 0;
};

// Raw per-trial record: every event with its latency (retired instructions
// from injection to the event; kNever if it did not fire).
struct UarchTrialRecord {
  std::string workload;
  uarch::BitRef bit;
  uarch::StorageClass storage = uarch::StorageClass::kLatch;
  uarch::LhfProtection protection = uarch::LhfProtection::kNone;
  std::string field_name;

  u64 lat_exception = kNever;  // ISA exception retired
  u64 lat_cfv = kNever;        // first retired-pc divergence (perfect detector)
  u64 lat_hiconf = kNever;     // first high-confidence-mispredict symptom
  u64 lat_deadlock = kNever;   // watchdog saturation
  u64 lat_illegal_flow = kNever;  // control-flow monitoring watchdog
  u64 lat_cache_burst = kNever;   // L1D miss-burst extension symptom

  bool trace_diverged = false;       // any retired-effect mismatch
  bool arch_corrupt_at_end = false;  // registers/memory wrong after catch-up
  // End-of-monitor microarchitectural comparison (only meaningful when the
  // trace never diverged):
  bool uarch_state_equal = false;
  bool live_state_diff = false;

  uarch::Core::Status end_status = uarch::Core::Status::kRunning;

  // Containment record, set only when the trial aborted inside the simulator:
  // deterministic exception-type tag, message, and whether it was a resource
  // budget violation (classified resource-exhausted) or a simulator throw
  // (classified sim-abort). Aborts take precedence over every other category.
  std::string abort_type;
  std::string abort_message;
  bool abort_resource = false;

  // Fault-model record, populated only for non-default models so default
  // traces keep their historical bytes: the model token, every extra flipped
  // bit beyond `bit` (packed via pack_bit_ref), and — for the rate-driven
  // model — whether the trial upset at all.
  std::string model;
  std::vector<u64> extra_bits;
  bool upset = true;

  bool aborted() const noexcept { return !abort_type.empty(); }
};

struct UarchCampaignResult {
  std::vector<UarchTrialRecord> trials;
  u64 eligible_bits = 0;  // size of the sampled state space
};

// Identity hash over every config field (campaign kind and machine
// configuration included); a resume manifest written under one hash refuses
// to continue under another.
u64 config_hash(const UarchCampaignConfig& config);

UarchCampaignResult run_uarch_campaign(const UarchCampaignConfig& config);

// Orchestrated overload: sharded execution with optional JSONL streaming,
// manifest-based resume and heartbeat (see orchestrator.hpp). `options.workers`
// supersedes `config.workers`. Results are byte-identical for any worker
// count and for interrupted-then-resumed runs of the same config + shard size.
struct CampaignRunOptions;
struct CampaignTelemetry;
struct ShardSpec;
UarchCampaignResult run_uarch_campaign(const UarchCampaignConfig& config,
                                       const CampaignRunOptions& options,
                                       CampaignTelemetry* telemetry = nullptr);

// Run one planned shard (exposed for tests and custom supervisors). Every
// trial body executes inside the containment boundary, so each record has a
// classified outcome even when the corrupted machine drives the simulator
// into a throw or past its resource budget.
std::vector<UarchTrialRecord> run_uarch_shard(const UarchCampaignConfig& config,
                                              const ShardSpec& shard);

// Single trial against a pre-warmed golden core (exposed for tests).
// `golden_at_point` must be running. `trial_budget` limits are relative to
// the injection point; violations throw BudgetExceeded (the shard runner's
// containment boundary converts them into resource-exhausted records).
UarchTrialRecord run_uarch_trial(const uarch::Core& golden_at_point,
                                 const uarch::BitRef& bit, u64 monitor_cycles,
                                 u64 catchup_cycles,
                                 const ResourceBudget& trial_budget = {});

// Plan-driven single trial (exposed for the fault-model property tests): flip
// every bit of `plan` at the injection point (none when plan.upset is false),
// conditionally revert transient bits after one monitored cycle, and monitor
// exactly like run_uarch_trial. The record's `bit` is the plan's primary
// (first) bit; the caller stamps model/extra_bits/upset.
UarchTrialRecord run_uarch_plan_trial(const uarch::Core& golden_at_point,
                                      const InjectionPlan& plan,
                                      u64 monitor_cycles, u64 catchup_cycles,
                                      const ResourceBudget& trial_budget = {});

}  // namespace restore::faultinject
