// Trial outcome taxonomy.
//
// Table 1 (architectural / VM-level study, Figure 2):
//   masked    - the injected fault did not cause failure
//   exception - an ISA-defined exception was raised
//   cfv       - control-flow violation: an incorrect instruction retired
//   mem-addr  - the address of a memory operation was affected
//   mem-data  - a store wrote incorrect data
//   register  - only registers were corrupted
// Precedence (high to low): exception, cfv, mem-addr, mem-data, register.
//
// Table 2 (microarchitectural study, Figures 4-6):
//   masked    - fault overwritten; machine state matches the golden run
//   deadlock  - watchdog-detected hang
//   exception - fault propagated into an ISA exception
//   cfv       - control-flow violation
//   sdc       - register-file or memory corruption that escaped
//   latent    - no failure yet, but the fault is still live in *used* state
//   other     - fault parked in dead state; failure unlikely
// Precedence (high to low): deadlock, exception, cfv, sdc.
//
// Containment categories (both studies): injected faults can also drive the
// *host simulator* into a throw or into a deterministic resource-budget
// violation. The containment boundary records those trials instead of killing
// the campaign:
//   sim-abort          - the simulator raised an exception while running the
//                        corrupted machine (type + message in the record)
//   resource-exhausted - the trial exceeded its deterministic budget (max
//                        cycles / retired instructions / mapped pages)
// Both are properties of the analysis tool, not of the modelled hardware, so
// they are excluded from the paper's failure/coverage statistics and reported
// separately. They take precedence over every hardware category (an aborted
// trial observed nothing trustworthy).
#pragma once

#include <string_view>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace restore::faultinject {

enum class VmOutcome : u8 {
  kMasked,
  kException,
  kCfv,
  kMemAddr,
  kMemData,
  kRegister,
  kSimAbort,
  kResourceExhausted,
};

constexpr std::string_view to_string(VmOutcome outcome) noexcept {
  switch (outcome) {
    case VmOutcome::kMasked: return "masked";
    case VmOutcome::kException: return "exception";
    case VmOutcome::kCfv: return "cfv";
    case VmOutcome::kMemAddr: return "mem-addr";
    case VmOutcome::kMemData: return "mem-data";
    case VmOutcome::kRegister: return "register";
    case VmOutcome::kSimAbort: return "sim-abort";
    case VmOutcome::kResourceExhausted: return "resource-exhausted";
  }
  return "?";
}

constexpr bool is_contained_abort(VmOutcome outcome) noexcept {
  return outcome == VmOutcome::kSimAbort || outcome == VmOutcome::kResourceExhausted;
}

enum class UarchOutcome : u8 {
  kMasked,
  kDeadlock,
  kException,
  kCfv,
  kSdc,
  kLatent,
  kOther,
  kSimAbort,
  kResourceExhausted,
};

constexpr std::string_view to_string(UarchOutcome outcome) noexcept {
  switch (outcome) {
    case UarchOutcome::kMasked: return "masked";
    case UarchOutcome::kDeadlock: return "deadlock";
    case UarchOutcome::kException: return "exception";
    case UarchOutcome::kCfv: return "cfv";
    case UarchOutcome::kSdc: return "sdc";
    case UarchOutcome::kLatent: return "latent";
    case UarchOutcome::kOther: return "other";
    case UarchOutcome::kSimAbort: return "sim-abort";
    case UarchOutcome::kResourceExhausted: return "resource-exhausted";
  }
  return "?";
}

constexpr bool is_contained_abort(UarchOutcome outcome) noexcept {
  return outcome == UarchOutcome::kSimAbort ||
         outcome == UarchOutcome::kResourceExhausted;
}

constexpr bool is_failure(UarchOutcome outcome) noexcept {
  switch (outcome) {
    case UarchOutcome::kDeadlock:
    case UarchOutcome::kException:
    case UarchOutcome::kCfv:
    case UarchOutcome::kSdc:
    case UarchOutcome::kLatent:
      return true;
    default:
      return false;
  }
}

// Covered = ReStore detects and recovers the failure (paper §5.1.1: the
// deadlock, exception, and cfv categories).
constexpr bool is_covered(UarchOutcome outcome) noexcept {
  return outcome == UarchOutcome::kDeadlock || outcome == UarchOutcome::kException ||
         outcome == UarchOutcome::kCfv;
}

}  // namespace restore::faultinject
