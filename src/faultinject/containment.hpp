// The trial containment boundary.
//
// ReStore's premise is that injected faults drive the machine into arbitrary
// state — and arbitrary state can drive the *host simulator* into throws
// (unmapped raw accesses, registry lookups) or runaway resource use. The
// containment boundary wraps every trial body: a simulator exception becomes
// a deterministic `sim-abort` record (exception type + message), a
// BudgetExceeded becomes `resource-exhausted`, and nothing escapes to kill
// the shard — let alone the campaign.
//
// Determinism contract: the abort record is built only from the exception's
// static type and its message, and every message produced inside the
// simulator is itself built from simulated quantities. Classification is
// therefore reproducible at any worker count; no wall-clock value ever enters
// a trial record.
//
// The one deliberate hole: std::bad_alloc escapes. Host memory exhaustion is
// a *transient host* failure, not a property of the injected fault state, so
// it propagates to the shard supervisor, which retries the (deterministic)
// shard and quarantines it only if the failure persists.
#pragma once

#include <new>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/budget.hpp"
#include "vm/errors.hpp"

namespace restore::faultinject {

// What the containment boundary records about an aborted trial.
struct TrialAbortInfo {
  std::string type;     // deterministic tag, e.g. "std::out_of_range"
  std::string message;  // the exception's what()
  bool resource_exhausted = false;  // true => classify as resource-exhausted
};

// Run `body` inside the containment boundary. Returns nullopt when the body
// completes; otherwise the abort record. std::bad_alloc is rethrown (see
// file comment).
template <class Fn>
std::optional<TrialAbortInfo> contain_trial(Fn&& body) {
  try {
    std::forward<Fn>(body)();
    return std::nullopt;
  } catch (const BudgetExceeded& e) {
    return TrialAbortInfo{std::string("budget-") + to_string(e.kind()), e.what(),
                          /*resource_exhausted=*/true};
  } catch (const std::bad_alloc&) {
    throw;  // transient host failure: shard-level retry territory
  } catch (const vm::UnmappedAccessError& e) {
    return TrialAbortInfo{"unmapped-access", e.what(), false};
  } catch (const std::out_of_range& e) {
    return TrialAbortInfo{"std::out_of_range", e.what(), false};
  } catch (const std::invalid_argument& e) {
    return TrialAbortInfo{"std::invalid_argument", e.what(), false};
  } catch (const std::domain_error& e) {
    return TrialAbortInfo{"std::domain_error", e.what(), false};
  } catch (const std::length_error& e) {
    return TrialAbortInfo{"std::length_error", e.what(), false};
  } catch (const std::logic_error& e) {
    return TrialAbortInfo{"std::logic_error", e.what(), false};
  } catch (const std::overflow_error& e) {
    return TrialAbortInfo{"std::overflow_error", e.what(), false};
  } catch (const std::underflow_error& e) {
    return TrialAbortInfo{"std::underflow_error", e.what(), false};
  } catch (const std::range_error& e) {
    return TrialAbortInfo{"std::range_error", e.what(), false};
  } catch (const std::runtime_error& e) {
    return TrialAbortInfo{"std::runtime_error", e.what(), false};
  } catch (const std::exception& e) {
    return TrialAbortInfo{"std::exception", e.what(), false};
  } catch (...) {
    return TrialAbortInfo{"unknown", "non-standard exception", false};
  }
}

}  // namespace restore::faultinject
