#include "faultinject/vm_campaign.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <numeric>
#include <stdexcept>

#include "common/bits.hpp"
#include "common/thread_annotations.hpp"
#include "faultinject/containment.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/trial_speed.hpp"
#include "vm/vm.hpp"

namespace restore::faultinject {

namespace {

// Cache of golden traces per workload (the campaign replays them for every
// trial).
struct GoldenTrace {
  std::vector<vm::Retired> records;
  std::vector<u64> result_indices;  // dynamic indices of register-writing insns
  std::string output;
  // Architectural register file at the end of the clean run (residual-
  // corruption comparison; avoids re-running a reference VM per trial).
  std::array<u64, isa::kNumArchRegs> final_regs{};
};

// Guarded cache so concurrent first-use from parallel trials cannot race the
// insert. One struct ties the map to its mutex for the thread-safety
// analysis; std::map never invalidates element references, so returned
// references stay valid after the lock is released.
struct GoldenStore {
  Mutex mutex;
  std::map<std::string, GoldenTrace> cache RESTORE_GUARDED_BY(mutex);
};

const GoldenTrace& golden_trace(const workloads::Workload& workload) {
  static GoldenStore store;
  MutexLock lock(store.mutex);
  auto& cache = store.cache;
  auto it = cache.find(workload.name);
  if (it != cache.end()) return it->second;

  GoldenTrace trace;
  vm::Vm vm(workload.program);
  while (auto rec = vm.step()) {
    if (rec->wrote_reg) trace.result_indices.push_back(trace.records.size());
    trace.records.push_back(*rec);
  }
  trace.output = vm.output();
  for (u8 r = 0; r < isa::kNumArchRegs; ++r) trace.final_regs[r] = vm.reg(r);
  if (trace.result_indices.empty()) {
    throw std::logic_error("workload produces no register results: " + workload.name);
  }
  return cache.emplace(workload.name, std::move(trace)).first->second;
}

}  // namespace

namespace {

// Common monitoring/classification once the corrupted VM is positioned just
// past `inject_index`. `trial_budget` bounds the monitored run
// deterministically (BudgetExceeded propagates to the containment boundary).
// Monitors in place: the campaign shard reuses one arena-held VM across its
// trials, so the monitored machine is a caller-owned lvalue rather than a
// by-value copy constructed (and heap-churned) per trial.
VmTrialResult monitor_trial(const workloads::Workload& workload, vm::Vm& vm,
                            u64 inject_index, u32 bit, u64 overrun_budget,
                            const ResourceBudget& trial_budget = {});

}  // namespace

VmTrialResult run_vm_trial(const workloads::Workload& workload, u64 inject_index,
                           u32 bit, u64 overrun_budget) {
  const GoldenTrace& golden = golden_trace(workload);
  if (inject_index >= golden.records.size() ||
      !golden.records[inject_index].wrote_reg) {
    throw std::invalid_argument("inject_index must name a register-writing insn");
  }

  // Re-execute to the injection point, then flip the destination register.
  vm::Vm vm(workload.program);
  for (u64 i = 0; i <= inject_index; ++i) vm.step();
  const auto& site = golden.records[inject_index];
  vm.set_reg(site.rd, flip_bit(site.rd_value, bit));
  return monitor_trial(workload, vm, inject_index, bit, overrun_budget);
}

VmTrialResult run_vm_register_trial(const workloads::Workload& workload,
                                    u64 inject_index, u8 reg, u32 bit,
                                    u64 overrun_budget) {
  const GoldenTrace& golden = golden_trace(workload);
  if (inject_index >= golden.records.size()) {
    throw std::invalid_argument("inject_index out of range");
  }
  vm::Vm vm(workload.program);
  for (u64 i = 0; i <= inject_index; ++i) vm.step();
  vm.set_reg(reg, flip_bit(vm.reg(reg), bit));
  return monitor_trial(workload, vm, inject_index, bit, overrun_budget);
}

namespace {

VmTrialResult monitor_trial(const workloads::Workload& workload, vm::Vm& vm,
                            u64 inject_index, u32 bit, u64 overrun_budget,
                            const ResourceBudget& trial_budget) {
  const GoldenTrace& golden = golden_trace(workload);
  VmTrialResult result;
  result.workload = workload.name;
  result.inject_index = inject_index;
  result.bit = bit;

  // Monitor the rest of the run, comparing against the golden stream.
  u64 lat_exception = kNever, lat_cfv = kNever, lat_mem_addr = kNever,
      lat_mem_data = kNever, lat_register = kNever;
  bool pc_stream_diverged = false;

  u64 executed = 0;
  const u64 budget = golden.records.size() - inject_index + overrun_budget;
  while (executed < budget) {
    if (trial_budget.max_retired != 0 && executed >= trial_budget.max_retired) {
      throw BudgetExceeded(BudgetKind::kRetired, trial_budget.max_retired,
                           executed + 1);
    }
    const auto rec = vm.step();
    if (!rec.has_value()) break;  // halted or faulted previously
    ++executed;
    const u64 latency = executed;

    if (rec->fault != isa::ExceptionKind::kNone) {
      lat_exception = std::min(lat_exception, latency);
      break;  // highest-precedence symptom: trial decided
    }

    const u64 golden_index = inject_index + executed;
    if (!pc_stream_diverged && golden_index < golden.records.size()) {
      const vm::Retired& ref = golden.records[golden_index];
      if (rec->pc != ref.pc) {
        pc_stream_diverged = true;
        lat_cfv = std::min(lat_cfv, latency);
      } else {
        if (rec->is_store && rec->store_addr != ref.store_addr) {
          lat_mem_addr = std::min(lat_mem_addr, latency);
        }
        if (rec->is_load && rec->load_addr != ref.load_addr) {
          lat_mem_addr = std::min(lat_mem_addr, latency);
        }
        if (rec->is_store && rec->store_addr == ref.store_addr &&
            rec->store_data != ref.store_data) {
          lat_mem_data = std::min(lat_mem_data, latency);
        }
        if (rec->wrote_reg && ref.wrote_reg && rec->rd_value != ref.rd_value) {
          lat_register = std::min(lat_register, latency);
        }
      }
    }
    if (rec->halted) break;
  }

  // Residual register corruption: the flipped register was never overwritten
  // and still differs at program end (visible only in final state).
  bool residual_register = false;
  if (lat_exception == kNever && !pc_stream_diverged && lat_mem_addr == kNever &&
      lat_mem_data == kNever && lat_register == kNever) {
    if (vm.status() == vm::Vm::Status::kHalted) {
      // Compare the final register file against the cached clean-run state.
      for (u8 r = 0; r < isa::kNumArchRegs && !residual_register; ++r) {
        if (vm.reg(r) != golden.final_regs[r]) residual_register = true;
      }
    } else {
      // Still running at budget exhaustion without any divergence event:
      // treat as register-latent.
      residual_register = true;
    }
  }

  // Classify with Table 1 precedence.
  if (lat_exception != kNever) {
    result.outcome = VmOutcome::kException;
    result.latency = lat_exception;
  } else if (lat_cfv != kNever) {
    result.outcome = VmOutcome::kCfv;
    result.latency = lat_cfv;
  } else if (lat_mem_addr != kNever) {
    result.outcome = VmOutcome::kMemAddr;
    result.latency = lat_mem_addr;
  } else if (lat_mem_data != kNever) {
    result.outcome = VmOutcome::kMemData;
    result.latency = lat_mem_data;
  } else if (lat_register != kNever) {
    result.outcome = VmOutcome::kRegister;
    result.latency = lat_register;
  } else if (residual_register) {
    result.outcome = VmOutcome::kRegister;
    result.latency = kNever;  // only visible in final state
  } else {
    result.outcome = VmOutcome::kMasked;
    result.latency = kNever;
  }
  return result;
}

}  // namespace

namespace {

std::vector<std::string> selected_workload_names(
    const std::vector<std::string>& requested) {
  if (!requested.empty()) {
    for (const auto& name : requested) workloads::by_name(name);  // validate
    return requested;
  }
  std::vector<std::string> names;
  for (const auto& wl : workloads::all()) names.push_back(wl.name);
  return names;
}

// Page cap implied by a budget (the tighter of max_pages and max_bytes).
u64 effective_page_cap(const ResourceBudget& budget) {
  u64 cap = budget.max_pages;
  if (budget.max_bytes != 0) {
    const u64 byte_pages = (budget.max_bytes + vm::kPageBytes - 1) / vm::kPageBytes;
    cap = cap == 0 ? byte_pages : std::min(cap, byte_pages);
  }
  return cap;
}

VmTrialResult aborted_vm_trial(const std::string& workload, u64 inject_index,
                               u32 bit, TrialAbortInfo info) {
  VmTrialResult result;
  result.workload = workload;
  result.outcome = info.resource_exhausted ? VmOutcome::kResourceExhausted
                                           : VmOutcome::kSimAbort;
  result.latency = kNever;
  result.inject_index = inject_index;
  result.bit = bit;
  result.abort_type = std::move(info.type);
  result.abort_message = std::move(info.message);
  return result;
}

}  // namespace

// One shard: sample `shard.trial_count` trials from the shard's own RNG
// stream, then execute them in injection-index order, advancing ONE golden VM
// incrementally and forking each trial machine from it (COW pages make the
// fork O(mapped pages)). Per-trial setup cost is thus independent of the
// injection index instead of re-executing from program start. Each trial body
// runs inside the containment boundary: a simulator throw or budget violation
// yields a sim-abort / resource-exhausted record instead of escaping.
std::vector<VmTrialResult> run_vm_shard(const VmCampaignConfig& config,
                                        const ShardSpec& shard) {
  const workloads::Workload& wl = workloads::by_name(shard.workload);
  const GoldenTrace& golden = golden_trace(wl);
  Rng rng(shard.seed);

  struct PlannedTrial {
    u64 index = 0;
    u32 bit = 0;
    u8 reg = 0;
    bool flip_reg = false;  // targeted-store: flip register `reg`, not the rd
    u32 flip_bits = 1;      // multi: adjacent result bits flipped together
    bool upset = true;      // rate: false = no strike; recorded masked
    std::size_t slot = 0;   // position in the shard's result vector
  };
  const FaultModelConfig& fm = config.fault_model;
  const bool default_model = is_default_fault_model(fm);
  const u32 width = config.low32_only ? 32 : 64;
  std::vector<PlannedTrial> plans(shard.trial_count);
  if (default_model) {
    for (u64 t = 0; t < shard.trial_count; ++t) {
      plans[t].slot = t;
      plans[t].bit = static_cast<u32>(rng.below(width));
      if (config.model == VmFaultModel::kResultBit) {
        plans[t].index = golden.result_indices[rng.below(golden.result_indices.size())];
      } else {
        plans[t].index = rng.below(golden.records.size());
        plans[t].reg = static_cast<u8>(rng.below(31));  // r31 is hardwired zero
      }
    }
  } else {
    // Non-default models draw from the model substream (never the primary
    // stream), with the same fixed per-trial draw order as the default path
    // (bit, then site, then model-specific extras). `rng` stays untouched, so
    // byte identity of the default model is structurally impossible to break
    // from here.
    Rng model_rng(model_stream_seed(shard.seed, static_cast<u64>(fm.model)));
    // Architectural site list per model: the rate and multi models use the
    // result-producing sites; targeted narrows to load results or store
    // points (the store-targeted flip corrupts a random register right at the
    // store, the closest architectural analogue of an LSQ upset).
    std::vector<u64> sites;
    if (fm.model == FaultModel::kTargeted) {
      for (u64 i = 0; i < golden.records.size(); ++i) {
        const vm::Retired& r = golden.records[i];
        if (fm.target == "store" ? r.is_store : (r.is_load && r.wrote_reg)) {
          sites.push_back(i);
        }
      }
      if (sites.empty()) {
        throw std::invalid_argument("no " + fm.target +
                                    " sites in workload: " + wl.name);
      }
    } else {
      sites = golden.result_indices;
    }
    const double p = upset_probability(fm);
    const u32 k = std::min<u32>(std::max<u32>(fm.multi_bits, 1), width);
    for (u64 t = 0; t < shard.trial_count; ++t) {
      plans[t].slot = t;
      plans[t].bit = static_cast<u32>(model_rng.below(width));
      plans[t].index = sites[model_rng.below(sites.size())];
      switch (fm.model) {
        case FaultModel::kMultiBitAdjacent:
          plans[t].flip_bits = k;
          plans[t].bit = std::min(plans[t].bit, width - k);
          break;
        case FaultModel::kTargeted:
          if (fm.target == "store") {
            plans[t].flip_reg = true;
            plans[t].reg = static_cast<u8>(model_rng.below(31));
          }
          break;
        case FaultModel::kRateDriven:
          plans[t].upset = model_rng.chance(p);
          break;
        default:
          break;
      }
    }
  }

  std::vector<std::size_t> order(plans.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return plans[a].index < plans[b].index;
  });

  std::vector<VmTrialResult> trials(plans.size());
  vm::Vm golden_vm(wl.program);
  u64 steps = 0;
  const u64 page_cap = effective_page_cap(config.trial_budget);
  const bool use_arena = trial_speed().trial_arena;
  TrialArena<vm::Vm> arena;
  for (const std::size_t oi : order) {
    const PlannedTrial& plan = plans[oi];
    if (!plan.upset) {
      // Rate-driven trial with no strike: the machine is never perturbed, so
      // the outcome is masked by construction — record it without executing.
      VmTrialResult& result = trials[plan.slot];
      result.workload = wl.name;
      result.outcome = VmOutcome::kMasked;
      result.latency = kNever;
      result.inject_index = plan.index;
      result.bit = plan.bit;
    } else {
      while (steps <= plan.index) {
        golden_vm.step();
        ++steps;
      }
      const auto abort = contain_trial([&] {
        if (!use_arena) arena.clear();
        vm::Vm& faulty = arena.reset_to(golden_vm);
        faulty.memory().set_page_budget(page_cap);
        if (plan.flip_reg) {
          faulty.set_reg(plan.reg, flip_bit(faulty.reg(plan.reg), plan.bit));
        } else if (config.model == VmFaultModel::kResultBit) {
          const vm::Retired& site = golden.records[plan.index];
          const u64 mask = (plan.flip_bits >= 64 ? ~u64{0}
                                                 : (u64{1} << plan.flip_bits) - 1)
                           << plan.bit;
          faulty.set_reg(site.rd, site.rd_value ^ mask);
        } else {
          faulty.set_reg(plan.reg, flip_bit(faulty.reg(plan.reg), plan.bit));
        }
        trials[plan.slot] = monitor_trial(wl, faulty, plan.index, plan.bit,
                                          config.overrun_budget,
                                          config.trial_budget);
      });
      if (abort) {
        trials[plan.slot] = aborted_vm_trial(wl.name, plan.index, plan.bit, *abort);
      }
    }
    if (!default_model) {
      VmTrialResult& result = trials[plan.slot];
      result.model = std::string(to_string(fm.model));
      result.extra_bits.clear();
      for (u32 i = 1; i < plan.flip_bits; ++i) {
        result.extra_bits.push_back(plan.bit + i);
      }
      result.upset = plan.upset;
    }
  }
  return trials;
}

u64 config_hash(const VmCampaignConfig& config) {
  std::string key = "vm;";
  key += std::to_string(static_cast<int>(config.model)) + ';';
  key += std::to_string(config.trials_per_workload) + ';';
  key += std::to_string(config.low32_only ? 1 : 0) + ';';
  key += std::to_string(config.overrun_budget) + ';';
  for (const auto& name : config.workloads) key += name + ',';
  // Budgets change trial outcomes, so they are part of the identity — but
  // only non-default budgets contribute, keeping every pre-budget manifest
  // resumable.
  if (!config.trial_budget.unlimited()) {
    key += ";budget=" + budget_identity_key(config.trial_budget);
  }
  // Same appended-only discipline for the fault_model: the default single-bit
  // model hashes exactly as before the subsystem existed.
  if (!is_default_fault_model(config.fault_model)) {
    key += ";fmodel=" + fault_model_identity_key(config.fault_model);
  }
  return fnv1a(key, fnv1a(std::to_string(config.seed)));
}

VmCampaignResult run_vm_campaign(const VmCampaignConfig& config,
                                 const CampaignRunOptions& options,
                                 CampaignTelemetry* telemetry) {
  validate_fault_model(config.fault_model, /*vm_campaign=*/true);
  if (!is_default_fault_model(config.fault_model) &&
      config.model == VmFaultModel::kRegisterBit) {
    throw std::invalid_argument(
        "non-default fault models require the result-bit vm model");
  }
  const auto names = selected_workload_names(config.workloads);
  const auto shards = plan_shards(config.seed, names, config.trials_per_workload,
                                  options.shard_trials);

  CampaignManifest identity;
  identity.kind = "vm";
  identity.config_hash = config_hash(config);
  identity.seed = config.seed;
  identity.shard_trials =
      options.shard_trials == 0 ? kDefaultShardTrials : options.shard_trials;

  VmCampaignResult result;
  result.trials = run_sharded_campaign<VmTrialResult>(
      shards, std::move(identity), options,
      [&config](const ShardSpec& shard) { return run_vm_shard(config, shard); },
      vm_trial_to_jsonl, vm_trial_from_jsonl,
      [](const VmTrialResult& trial) { return std::string(to_string(trial.outcome)); },
      telemetry);
  return result;
}

VmCampaignResult run_vm_campaign(const VmCampaignConfig& config) {
  return run_vm_campaign(config, CampaignRunOptions{});
}

std::size_t VmCampaignResult::count(VmOutcome outcome, u64 max_latency) const {
  return static_cast<std::size_t>(std::count_if(
      trials.begin(), trials.end(), [&](const VmTrialResult& t) {
        return t.outcome == outcome && t.latency <= max_latency;
      }));
}

double VmCampaignResult::fraction(VmOutcome outcome, u64 max_latency) const {
  if (trials.empty()) return 0.0;
  return static_cast<double>(count(outcome, max_latency)) / trials.size();
}

}  // namespace restore::faultinject
