// Bit-manipulation helpers. Every microarchitectural field in this project is
// stored with an explicit bit width so that an injected single-bit flip always
// yields a representable value (see DESIGN.md §4.2).
#pragma once

#include <bit>
#include <cassert>

#include "common/types.hpp"

namespace restore {

// A mask with the low `n` bits set; n may be 0..64.
constexpr u64 mask64(unsigned n) noexcept {
  return n >= 64 ? ~u64{0} : (u64{1} << n) - 1;
}

constexpr bool get_bit(u64 value, unsigned bit) noexcept {
  return (value >> bit) & 1u;
}

constexpr u64 set_bit(u64 value, unsigned bit, bool on) noexcept {
  const u64 m = u64{1} << bit;
  return on ? (value | m) : (value & ~m);
}

constexpr u64 flip_bit(u64 value, unsigned bit) noexcept {
  return value ^ (u64{1} << bit);
}

// Sign-extend the low `bits` bits of `value` to 64 bits.
constexpr i64 sign_extend(u64 value, unsigned bits) noexcept {
  assert(bits >= 1 && bits <= 64);
  const u64 m = u64{1} << (bits - 1);
  value &= mask64(bits);
  return static_cast<i64>((value ^ m) - m);
}

// Extract bits [lo, lo+len) of value.
constexpr u64 extract_bits(u64 value, unsigned lo, unsigned len) noexcept {
  return (value >> lo) & mask64(len);
}

// Number of bits needed to index `n` entries (n must be a power of two).
constexpr unsigned index_bits(u64 n) noexcept {
  assert(std::has_single_bit(n));
  return static_cast<unsigned>(std::countr_zero(n));
}

constexpr bool is_pow2(u64 n) noexcept { return n != 0 && std::has_single_bit(n); }

}  // namespace restore
