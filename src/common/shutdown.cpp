#include "common/shutdown.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>

namespace restore {

namespace {

std::atomic<bool> g_shutdown{false};
// Write end of the wake self-pipe; -1 until shutdown_wake_fd() creates it.
std::atomic<int> g_wake_write_fd{-1};

// Async-signal-safe: write() is on the sanctioned list, and the fd is armed
// before handlers can observe it (relaxed is enough: the fd value is
// published through the same atomic the handler reads).
void notify_wake_pipe() noexcept {
  const int fd = g_wake_write_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

// Async-signal-safe: only touches atomics, write() and _Exit. A second
// signal while the flag is already set means the user wants out *now*.
extern "C" void shutdown_signal_handler(int /*signum*/) {
  if (g_shutdown.exchange(true, std::memory_order_relaxed)) {
    std::_Exit(130);  // 128 + SIGINT, the conventional interrupted-exit code
  }
  notify_wake_pipe();
}

}  // namespace

void install_shutdown_signal_handlers() {
  static const bool installed = [] {
    std::signal(SIGINT, shutdown_signal_handler);
    std::signal(SIGTERM, shutdown_signal_handler);
    return true;
  }();
  (void)installed;
}

const std::atomic<bool>* shutdown_flag() noexcept { return &g_shutdown; }

bool shutdown_requested() noexcept {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() noexcept {
  g_shutdown.store(true, std::memory_order_relaxed);
  notify_wake_pipe();
}

void reset_shutdown_flag() noexcept {
  g_shutdown.store(false, std::memory_order_relaxed);
  // Drain any pending wake bytes (the pipe is non-blocking).
  const int write_fd = g_wake_write_fd.load(std::memory_order_relaxed);
  if (write_fd >= 0) {
    const int read_fd = shutdown_wake_fd();
    char sink[64];
    while (read_fd >= 0 && ::read(read_fd, sink, sizeof sink) > 0) {
    }
  }
}

int shutdown_wake_fd() noexcept {
  static const int read_fd = [] {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) return -1;
    for (const int fd : fds) {
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
      ::fcntl(fd, F_SETFD, ::fcntl(fd, F_GETFD, 0) | FD_CLOEXEC);
    }
    g_wake_write_fd.store(fds[1], std::memory_order_relaxed);
    return fds[0];
  }();
  // A shutdown requested before the pipe existed must still read as ready:
  // arm it retroactively.
  if (read_fd >= 0 && shutdown_requested()) notify_wake_pipe();
  return read_fd;
}

}  // namespace restore
