#include "common/shutdown.hpp"

#include <csignal>
#include <cstdlib>

namespace restore {

namespace {

std::atomic<bool> g_shutdown{false};

// Async-signal-safe: only touches the atomic flag and _Exit. A second signal
// while the flag is already set means the user wants out *now*.
extern "C" void shutdown_signal_handler(int /*signum*/) {
  if (g_shutdown.exchange(true, std::memory_order_relaxed)) {
    std::_Exit(130);  // 128 + SIGINT, the conventional interrupted-exit code
  }
}

}  // namespace

void install_shutdown_signal_handlers() {
  static const bool installed = [] {
    std::signal(SIGINT, shutdown_signal_handler);
    std::signal(SIGTERM, shutdown_signal_handler);
    return true;
  }();
  (void)installed;
}

const std::atomic<bool>* shutdown_flag() noexcept { return &g_shutdown; }

bool shutdown_requested() noexcept {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() noexcept {
  g_shutdown.store(true, std::memory_order_relaxed);
}

void reset_shutdown_flag() noexcept {
  g_shutdown.store(false, std::memory_order_relaxed);
}

}  // namespace restore
