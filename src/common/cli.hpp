// Minimal command-line / environment option parsing for the bench and example
// binaries. Flags are "--name value" or "--name=value"; booleans are "--name".
// The RESTORE_TRIALS environment variable scales campaign sizes globally so
// that `for b in build/bench/*; do $b; done` stays fast by default while full
// paper-scale runs remain one env var away.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace restore {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has_flag(const std::string& name) const;
  std::optional<std::string> value(const std::string& name) const;
  u64 value_u64(const std::string& name, u64 fallback) const;
  double value_double(const std::string& name, double fallback) const;

  // Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::vector<std::pair<std::string, std::string>> options_;  // name -> value ("" for bare)
  std::vector<std::string> positional_;
};

// Trial-count override: --trials on the command line wins, then the
// RESTORE_TRIALS environment variable, then `fallback`.
u64 resolve_trial_count(const CliArgs& args, u64 fallback);

// Seed override: --seed, then RESTORE_SEED, then `fallback`.
u64 resolve_seed(const CliArgs& args, u64 fallback);

}  // namespace restore
