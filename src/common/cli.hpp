// Minimal command-line / environment option parsing for the bench and example
// binaries. Flags are "--name value" or "--name=value"; booleans are "--name".
// The RESTORE_TRIALS environment variable scales campaign sizes globally so
// that `for b in build/bench/*; do $b; done` stays fast by default while full
// paper-scale runs remain one env var away.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/types.hpp"

namespace restore {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has_flag(const std::string& name) const;
  std::optional<std::string> value(const std::string& name) const;
  u64 value_u64(const std::string& name, u64 fallback) const;
  double value_double(const std::string& name, double fallback) const;

  // Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::vector<std::pair<std::string, std::string>> options_;  // name -> value ("" for bare)
  std::vector<std::string> positional_;
};

// Environment overrides are declared centrally (see kEnvOverrides in
// cli.cpp) so campaign identity can never silently drift: reading an
// undeclared override throws std::logic_error, and simlint's ID-hash family
// cross-checks the table against tools/simlint/simlint.toml — every
// kIdentity override must resolve into a config field that feeds
// config_hash(), so a trace produced under an env override can never be
// mistaken for (or resumed as) a differently-configured campaign.
enum class EnvClass : u8 {
  kIdentity,      // alters simulation results; must reach config_hash
  kPresentation,  // telemetry/output shaping only; never enters a record
};

// True when `name` is declared in the env-override table (any class).
bool env_override_declared(const char* name) noexcept;

// Trial-count override: --trials on the command line wins, then the
// RESTORE_TRIALS environment variable, then `fallback`.
u64 resolve_trial_count(const CliArgs& args, u64 fallback);

// Seed override: --seed, then RESTORE_SEED, then `fallback`.
u64 resolve_seed(const CliArgs& args, u64 fallback);

// Fault-model name override: --fault-model, then RESTORE_FAULT_MODEL, then
// nullopt (the campaign default, single-bit). Identity-class: the resolved
// name selects a FaultModelConfig that feeds config_hash whenever it is
// non-default (faultinject/fault_model.hpp).
std::optional<std::string> resolve_fault_model_name(const CliArgs& args);

// Campaign-service socket path: --socket, then RESTORE_SOCKET, then
// `fallback`. Presentation-class: which socket a job was submitted over
// never reaches a trial record or the campaign identity.
std::string resolve_socket_path(const CliArgs& args, std::string fallback);

// Shared campaign-orchestration flags, understood by every campaign-driving
// binary:
//   --out-jsonl PATH   stream per-trial results to PATH as shards complete
//                      (a resume manifest is kept at PATH.manifest.json)
//   --resume           continue an interrupted campaign from the manifest
//   --shard-trials N   trials per shard (0 = library default)
//   --max-shards N     stop after N newly-run shards (trial-budget hook)
//   --heartbeat [N]    progress line to stderr every N completed shards (1
//                      when given bare)
//   --workers N        worker threads (absent = binary default)
//   --shard-stats PATH write per-shard wall-time stats as CSV after the run
//   --shard-retries N  re-run a failing shard N times before quarantining it
//   --retry-backoff-ms N
//                      base backoff between shard retries (doubles per retry;
//                      retries target transient host failures, so this is the
//                      one knowingly non-deterministic knob — it never reaches
//                      any trial record)
//   --trial-max-insns N / --trial-max-cycles N /
//   --trial-max-pages N / --trial-max-bytes N
//                      deterministic per-trial resource budgets (0 =
//                      unlimited); exceeding one classifies the trial as
//                      `resource-exhausted`
struct CampaignCliOptions {
  std::optional<std::string> out_jsonl;
  bool resume = false;
  u64 shard_trials = 0;
  u64 max_shards = 0;
  u64 heartbeat_every = 0;
  std::optional<u64> workers;
  std::optional<std::string> shard_stats;
  u64 shard_retries = 2;
  u64 retry_backoff_ms = 50;
  ResourceBudget trial_budget;
};

CampaignCliOptions resolve_campaign_cli(const CliArgs& args);

}  // namespace restore
