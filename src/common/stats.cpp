#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace restore {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

ProportionCi wilson_interval(std::size_t successes, std::size_t trials, double z) {
  ProportionCi ci;
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  ci.estimate = p;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  ci.lo = std::max(0.0, center - half);
  ci.hi = std::min(1.0, center + half);
  return ci;
}

std::vector<u64> figure2_latency_bins() {
  return {25, 50, 100, 200, 500, 1000, 10000, 100000, kNever};
}

std::vector<u64> checkpoint_interval_sweep() {
  return {25, 50, 100, 200, 500, 1000, 2000};
}

CategoryLatencyTable::CategoryLatencyTable(std::vector<u64> bin_edges)
    : edges_(std::move(bin_edges)) {}

void CategoryLatencyTable::add(const std::string& category, u64 latency) {
  latencies_[category].push_back(latency);
  ++total_;
}

std::size_t CategoryLatencyTable::count_within(const std::string& category,
                                               u64 max_latency) const {
  auto it = latencies_.find(category);
  if (it == latencies_.end()) return 0;
  return static_cast<std::size_t>(
      std::count_if(it->second.begin(), it->second.end(),
                    [max_latency](u64 l) { return l <= max_latency; }));
}

std::size_t CategoryLatencyTable::count(const std::string& category) const {
  auto it = latencies_.find(category);
  return it == latencies_.end() ? 0 : it->second.size();
}

std::vector<std::string> CategoryLatencyTable::categories() const {
  std::vector<std::string> out;
  out.reserve(latencies_.size());
  for (const auto& [name, values] : latencies_) out.push_back(name);
  return out;
}

}  // namespace restore
