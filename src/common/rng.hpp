// Deterministic pseudo-random number generation for fault-injection campaigns.
//
// We use xoshiro256** seeded via splitmix64. Campaigns must be reproducible
// from a single seed, so all randomness in the project flows through Rng.
#pragma once

#include <array>
#include <cassert>

#include "common/types.hpp"

namespace restore {

constexpr u64 splitmix64_next(u64& state) noexcept {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(u64 seed) noexcept {
    u64 sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  u64 next() noexcept {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be nonzero.
  u64 below(u64 bound) noexcept {
    assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = -bound % bound;
    for (;;) {
      const u64 r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) noexcept {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) noexcept { return uniform() < p; }

  // Derive an independent stream for a sub-task (e.g. one trial of a campaign).
  Rng fork(u64 stream_id) noexcept {
    u64 sm = next() ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x1234567);
    return Rng{splitmix64_next(sm)};
  }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

  std::array<u64, 4> state_{};
};

}  // namespace restore
