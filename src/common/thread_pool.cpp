#include "common/thread_pool.hpp"

#include <algorithm>

namespace restore {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  if (threads_.empty()) return;
  MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) cv_idle_.wait_locked(lock);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t chunk_size) {
  if (count == 0) return;  // avoid dividing a zero range into zero chunks
  if (threads_.empty()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Block-distribute into ~4 chunks per worker instead of one task per
  // index: one queue/lock round-trip amortizes over the whole chunk while
  // still load-balancing uneven iteration costs. An explicit chunk_size is
  // clamped so oversized chunks collapse to one task covering the range.
  const std::size_t chunks =
      chunk_size == 0 ? std::min(count, threads_.size() * 4)
                      : std::max<std::size_t>(1, (count + chunk_size - 1) / chunk_size);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
    begin = end;
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_task_.wait_locked(lock);
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

std::size_t default_campaign_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

}  // namespace restore
