// Clang thread-safety-analysis capability annotations, plus annotated mutex
// wrapper types that make the analysis enforceable across the campaign engine.
//
// The raw attribute macros (RESTORE_GUARDED_BY, RESTORE_REQUIRES, ...) expand
// to Clang's `__attribute__((...))` thread-safety attributes when the compiler
// supports them and to nothing otherwise, so GCC builds are unaffected.
// Enforcement happens in the clang CI job, which configures with
// -DRESTORE_THREAD_SAFETY=ON to promote -Wthread-safety to an error.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes, so
// annotating members with RESTORE_GUARDED_BY alone would drown the analysis in
// false positives (every std::lock_guard acquisition is invisible to it). The
// restore::Mutex / restore::MutexLock / restore::CondVar wrappers below are
// thin, zero-overhead shims over the std types whose lock/unlock/wait methods
// carry the attributes the analysis needs. All mutex-protected state in the
// repo goes through these wrappers; the simlint CONC family keeps it that way.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RESTORE_THREAD_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef RESTORE_THREAD_ATTR
#define RESTORE_THREAD_ATTR(x)  // no-op outside clang
#endif

#define RESTORE_CAPABILITY(x) RESTORE_THREAD_ATTR(capability(x))
#define RESTORE_SCOPED_CAPABILITY RESTORE_THREAD_ATTR(scoped_lockable)
#define RESTORE_GUARDED_BY(x) RESTORE_THREAD_ATTR(guarded_by(x))
#define RESTORE_PT_GUARDED_BY(x) RESTORE_THREAD_ATTR(pt_guarded_by(x))
#define RESTORE_REQUIRES(...) \
  RESTORE_THREAD_ATTR(requires_capability(__VA_ARGS__))
#define RESTORE_ACQUIRE(...) \
  RESTORE_THREAD_ATTR(acquire_capability(__VA_ARGS__))
#define RESTORE_RELEASE(...) \
  RESTORE_THREAD_ATTR(release_capability(__VA_ARGS__))
#define RESTORE_TRY_ACQUIRE(...) \
  RESTORE_THREAD_ATTR(try_acquire_capability(__VA_ARGS__))
#define RESTORE_EXCLUDES(...) RESTORE_THREAD_ATTR(locks_excluded(__VA_ARGS__))
#define RESTORE_RETURN_CAPABILITY(x) RESTORE_THREAD_ATTR(lock_returned(x))
#define RESTORE_NO_THREAD_SAFETY_ANALYSIS \
  RESTORE_THREAD_ATTR(no_thread_safety_analysis)

namespace restore {

// Annotated std::mutex. Callers normally acquire it through MutexLock; the
// raw lock()/unlock() methods exist so the scoped type (and nothing else —
// CONC-RAW-LOCK flags direct calls) can implement RAII on top of it.
class RESTORE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RESTORE_ACQUIRE() {
    mutex_.lock();  // simlint: allow(CONC-RAW-LOCK) -- RAII primitive itself
  }
  void unlock() RESTORE_RELEASE() {
    mutex_.unlock();  // simlint: allow(CONC-RAW-LOCK) -- RAII primitive itself
  }
  bool try_lock() RESTORE_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  // For interop with std APIs that demand a std::mutex (none today; CondVar
  // goes through MutexLock's native handle instead).
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

// Scoped RAII lock over Mutex, analysis-visible. Equivalent in behaviour to
// std::unique_lock<std::mutex>: the lock is held from construction to
// destruction, with CondVar::wait_locked allowed to release/reacquire it
// internally (atomically, as condition_variable::wait specifies).
class RESTORE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RESTORE_ACQUIRE(mutex)
      : mutex_(mutex), lock_(mutex.native()) {}
  ~MutexLock() RESTORE_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  [[maybe_unused]] Mutex& mutex_;
  std::unique_lock<std::mutex> lock_;
};

// Annotated condition variable. Waits take the scoped MutexLock, so the
// analysis knows the caller holds the lock, and are deliberately predicate-
// free primitives named `*_locked`: callers write the enclosing
// `while (!condition)` loop themselves, in lock-holding scope, where the
// analysis can check every guarded-member read. (Passing a predicate lambda
// to std::condition_variable::wait defeats the analysis — lambda bodies are
// analysed as separate functions that hold no locks.) The CONC-CV-NOPRED
// lint rule enforces the loop idiom at the call sites.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  // Blocks until notified (or spuriously woken). Caller must loop.
  void wait_locked(MutexLock& lock) {
    cv_.wait(lock.lock_);  // simlint: allow(CONC-CV-NOPRED) -- the primitive itself; callers loop
  }

  // Blocks until notified or `timeout` elapses. Caller must loop.
  template <class Rep, class Period>
  void wait_for_locked(MutexLock& lock,
                       const std::chrono::duration<Rep, Period>& timeout) {
    cv_.wait_for(lock.lock_, timeout);  // simlint: allow(CONC-CV-NOPRED) -- the primitive itself; callers loop
  }

 private:
  std::condition_variable cv_;
};

}  // namespace restore
