// Deterministic per-trial resource budgets for fault-injection campaigns.
//
// An injected fault can steer a simulated machine into arbitrary state; the
// containment layer bounds what one trial may consume of the *host* — cycles,
// retired instructions, mapped memory — purely in simulated quantities, so a
// budget violation classifies identically at any worker count and on any
// machine (no wall-clock anywhere in the decision).
//
// A budget field of 0 means unlimited; the default-constructed budget is the
// pre-containment behaviour and costs nothing on the clean path.
#pragma once

#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace restore {

struct ResourceBudget {
  u64 max_cycles = 0;    // simulated cycles a trial machine may run
  u64 max_retired = 0;   // instructions a trial machine may retire
  u64 max_pages = 0;     // pages a trial machine may have mapped
  u64 max_bytes = 0;     // bytes of mapped memory (rounded up to whole pages)

  bool unlimited() const noexcept {
    return max_cycles == 0 && max_retired == 0 && max_pages == 0 && max_bytes == 0;
  }
};

enum class BudgetKind : u8 { kCycles, kRetired, kPages, kBytes };

constexpr const char* to_string(BudgetKind kind) noexcept {
  switch (kind) {
    case BudgetKind::kCycles: return "cycles";
    case BudgetKind::kRetired: return "retired";
    case BudgetKind::kPages: return "pages";
    case BudgetKind::kBytes: return "bytes";
  }
  return "?";
}

// Thrown when a trial machine exceeds its resource budget. The message is
// built only from the budget kind and deterministic simulated quantities, so
// it can be recorded in the trial trace without breaking reproducibility.
class BudgetExceeded : public std::runtime_error {
 public:
  BudgetExceeded(BudgetKind kind, u64 limit, u64 observed)
      : std::runtime_error(std::string("resource budget exceeded: ") +
                           to_string(kind) + " limit " + std::to_string(limit) +
                           ", observed " + std::to_string(observed)),
        kind_(kind),
        limit_(limit),
        observed_(observed) {}

  BudgetKind kind() const noexcept { return kind_; }
  u64 limit() const noexcept { return limit_; }
  u64 observed() const noexcept { return observed_; }

 private:
  BudgetKind kind_;
  u64 limit_;
  u64 observed_;
};

// Canonical token for hashing a budget into a campaign's config identity.
// Campaigns append it only for non-default budgets, so the identity hash of
// every pre-existing (unlimited) config is unchanged.
inline std::string budget_identity_key(const ResourceBudget& budget) {
  return std::to_string(budget.max_cycles) + ',' + std::to_string(budget.max_retired) +
         ',' + std::to_string(budget.max_pages) + ',' + std::to_string(budget.max_bytes);
}

}  // namespace restore
