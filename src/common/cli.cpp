#include "common/cli.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace restore {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    // "--name value" if the next token is not itself a flag, else bare flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_.emplace_back(std::move(arg), argv[i + 1]);
      ++i;
    } else {
      options_.emplace_back(std::move(arg), "");
    }
  }
}

bool CliArgs::has_flag(const std::string& name) const {
  for (const auto& [key, val] : options_) {
    if (key == name) return true;
  }
  return false;
}

std::optional<std::string> CliArgs::value(const std::string& name) const {
  for (const auto& [key, val] : options_) {
    if (key == name && !val.empty()) return val;
  }
  return std::nullopt;
}

u64 CliArgs::value_u64(const std::string& name, u64 fallback) const {
  if (auto v = value(name)) return std::stoull(*v);
  return fallback;
}

double CliArgs::value_double(const std::string& name, double fallback) const {
  if (auto v = value(name)) return std::stod(*v);
  return fallback;
}

namespace {

struct EnvOverride {
  const char* name;
  EnvClass cls;
};

// Central declaration of every environment override the binaries honour.
// kIdentity overrides resolve into config fields that feed config_hash()
// (RESTORE_TRIALS -> trials_per_workload, RESTORE_SEED -> seed), so the
// campaign identity depends on the *effective* value, not on whether it
// arrived via flag or environment. simlint's ID-hash rules parse this
// initializer and reject unclassified or unhashed entries.
constexpr EnvOverride kEnvOverrides[] = {
    {"RESTORE_TRIALS", EnvClass::kIdentity},
    {"RESTORE_SEED", EnvClass::kIdentity},
    {"RESTORE_FAULT_MODEL", EnvClass::kIdentity},
    {"RESTORE_SOCKET", EnvClass::kPresentation},
};

}  // namespace

bool env_override_declared(const char* name) noexcept {
  for (const auto& entry : kEnvOverrides) {
    if (std::strcmp(entry.name, name) == 0) return true;
  }
  return false;
}

namespace {

std::optional<u64> env_u64(const char* name) {
  if (!env_override_declared(name)) {
    // A structural bug, not a user error: overrides must be declared above
    // (with an identity class) before any code may read them.
    throw std::logic_error(std::string("undeclared environment override: ") +
                           name);
  }
  // simlint: allow(DET-ENV) -- the CLI layer is the one sanctioned getenv
  // site; the table above keeps every override classified.
  if (const char* raw = std::getenv(name); raw != nullptr && raw[0] != '\0') {
    return std::stoull(raw);
  }
  return std::nullopt;
}

std::optional<std::string> env_string(const char* name) {
  if (!env_override_declared(name)) {
    throw std::logic_error(std::string("undeclared environment override: ") +
                           name);
  }
  // simlint: allow(DET-ENV) -- the CLI layer is the one sanctioned getenv
  // site; the table above keeps every override classified.
  if (const char* raw = std::getenv(name); raw != nullptr && raw[0] != '\0') {
    return std::string(raw);
  }
  return std::nullopt;
}

}  // namespace

u64 resolve_trial_count(const CliArgs& args, u64 fallback) {
  if (auto v = args.value("trials")) return std::stoull(*v);
  if (auto v = env_u64("RESTORE_TRIALS")) return *v;
  return fallback;
}

u64 resolve_seed(const CliArgs& args, u64 fallback) {
  if (auto v = args.value("seed")) return std::stoull(*v);
  if (auto v = env_u64("RESTORE_SEED")) return *v;
  return fallback;
}

std::optional<std::string> resolve_fault_model_name(const CliArgs& args) {
  if (auto v = args.value("fault-model")) return v;
  if (auto v = env_string("RESTORE_FAULT_MODEL")) return v;
  return std::nullopt;
}

std::string resolve_socket_path(const CliArgs& args, std::string fallback) {
  if (auto v = args.value("socket")) return *v;
  if (auto v = env_string("RESTORE_SOCKET")) return *v;
  return fallback;
}

CampaignCliOptions resolve_campaign_cli(const CliArgs& args) {
  CampaignCliOptions opts;
  opts.out_jsonl = args.value("out-jsonl");
  opts.resume = args.has_flag("resume");
  opts.shard_trials = args.value_u64("shard-trials", 0);
  opts.max_shards = args.value_u64("max-shards", 0);
  if (args.has_flag("heartbeat")) {
    opts.heartbeat_every = args.value_u64("heartbeat", 1);
  }
  if (args.has_flag("workers")) opts.workers = args.value_u64("workers", 0);
  opts.shard_stats = args.value("shard-stats");
  opts.shard_retries = args.value_u64("shard-retries", opts.shard_retries);
  opts.retry_backoff_ms = args.value_u64("retry-backoff-ms", opts.retry_backoff_ms);
  opts.trial_budget.max_retired = args.value_u64("trial-max-insns", 0);
  opts.trial_budget.max_cycles = args.value_u64("trial-max-cycles", 0);
  opts.trial_budget.max_pages = args.value_u64("trial-max-pages", 0);
  opts.trial_budget.max_bytes = args.value_u64("trial-max-bytes", 0);
  return opts;
}

}  // namespace restore
