#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace restore {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c];
      out << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::fmt_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TextTable::fmt_f(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string TextTable::fmt_u(unsigned long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", value);
  return buf;
}

}  // namespace restore
