// Cooperative graceful-shutdown support for long campaign runs.
//
// A campaign binary installs the handlers once; SIGINT/SIGTERM then flip a
// process-wide atomic stop flag instead of killing the process. The campaign
// orchestrator checks the flag between shard submissions: in-flight shards
// finish and are flushed to the trace + manifest, queued shards are skipped,
// and the run exits with a distinct partial-completion status that --resume
// can continue from. A second signal falls through to immediate termination
// (exit code 130) for users who really mean it.
#pragma once

#include <atomic>

namespace restore {

// Install SIGINT/SIGTERM handlers that set the shutdown flag. Idempotent.
void install_shutdown_signal_handlers();

// The process-wide stop flag the handlers set. Campaign code polls it (or
// hands it to CampaignRunOptions::stop_flag); tests may use their own atomic.
const std::atomic<bool>* shutdown_flag() noexcept;

bool shutdown_requested() noexcept;

// Programmatic equivalent of receiving SIGTERM (test hook, embedders).
void request_shutdown() noexcept;

// Clear the flag (tests that simulate shutdown and then continue).
// Also drains the wake pipe, so a later shutdown can signal it again.
void reset_shutdown_flag() noexcept;

// Readable fd that becomes ready when shutdown is requested: the read end of
// a self-pipe the signal handler (and request_shutdown) writes one byte to.
// Lets poll()-based event loops — the `restored` server — wake up on SIGTERM
// instead of discovering the flag on their next timeout. The pipe is created
// on the first call (non-blocking, close-on-exec); returns -1 if pipe
// creation failed. Call it *before* installing the signal handlers so a
// signal can never race pipe creation.
int shutdown_wake_fd() noexcept;

}  // namespace restore
