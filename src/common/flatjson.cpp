#include "common/flatjson.hpp"

namespace restore::flatjson {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Object> parse() {
    Object obj;
    skip_ws();
    if (!consume('{')) return std::nullopt;
    skip_ws();
    if (consume('}')) {
      skip_ws();
      return pos_ == text_.size() ? std::optional(std::move(obj)) : std::nullopt;
    }
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      obj.emplace(std::move(*key), std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return std::nullopt;
    }
    skip_ws();
    return pos_ == text_.size() ? std::optional(std::move(obj)) : std::nullopt;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: return std::nullopt;  // \uXXXX etc. never appear here
        }
        continue;
      }
      out.push_back(c);
    }
    return std::nullopt;
  }

  std::optional<u64> parse_uint() {
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return std::nullopt;
    }
    u64 value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + static_cast<u64>(text_[pos_++] - '0');
    }
    return value;
  }

  std::optional<Value> parse_value() {
    Value value;
    if (pos_ < text_.size() && text_[pos_] == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      value.kind = Value::Kind::kString;
      value.str = std::move(*s);
      return value;
    }
    if (consume_word("true")) {
      value.kind = Value::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_word("false")) {
      value.kind = Value::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (consume_word("null")) return value;
    if (consume('[')) {
      // An empty array parses as kUintArray; accessors treat that as an empty
      // array of either element type.
      value.kind = Value::Kind::kUintArray;
      skip_ws();
      if (consume(']')) return value;
      if (pos_ < text_.size() && text_[pos_] == '"') {
        value.kind = Value::Kind::kStringArray;
        for (;;) {
          skip_ws();
          auto s = parse_string();
          if (!s) return std::nullopt;
          value.str_array.push_back(std::move(*s));
          skip_ws();
          if (consume(',')) { skip_ws(); continue; }
          if (consume(']')) return value;
          return std::nullopt;
        }
      }
      for (;;) {
        skip_ws();
        auto n = parse_uint();
        if (!n) return std::nullopt;
        value.array.push_back(*n);
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return value;
        return std::nullopt;
      }
    }
    auto n = parse_uint();
    if (!n) return std::nullopt;
    value.kind = Value::Kind::kUint;
    value.uint = *n;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Object> parse(std::string_view text) { return Parser(text).parse(); }

void append_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_field(std::string& out, std::string_view key, u64 value) {
  out.push_back('"');
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void append_field(std::string& out, std::string_view key, bool value) {
  out.push_back('"');
  out += key;
  out += value ? "\":true" : "\":false";
}

void append_field(std::string& out, std::string_view key, std::string_view value) {
  out.push_back('"');
  out += key;
  out += "\":";
  append_string(out, value);
}

void append_field(std::string& out, std::string_view key,
                  const std::vector<u64>& values) {
  out.push_back('"');
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(values[i]);
  }
  out.push_back(']');
}

void append_field(std::string& out, std::string_view key,
                  const std::vector<std::string>& values) {
  out.push_back('"');
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_string(out, values[i]);
  }
  out.push_back(']');
}

const Value* find(const Object& obj, const std::string& key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::optional<u64> get_uint(const Object& obj, const std::string& key) {
  const Value* v = find(obj, key);
  if (v == nullptr || v->kind != Value::Kind::kUint) return std::nullopt;
  return v->uint;
}

std::optional<bool> get_bool(const Object& obj, const std::string& key) {
  const Value* v = find(obj, key);
  if (v == nullptr || v->kind != Value::Kind::kBool) return std::nullopt;
  return v->boolean;
}

std::optional<std::string> get_string(const Object& obj, const std::string& key) {
  const Value* v = find(obj, key);
  if (v == nullptr || v->kind != Value::Kind::kString) return std::nullopt;
  return v->str;
}

}  // namespace restore::flatjson
