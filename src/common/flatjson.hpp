// Minimal flat-JSON support shared by the campaign trace/manifest formats
// (faultinject/campaign_io) and the service wire protocol (service/protocol).
//
// The formats only ever contain one-level objects whose values are unsigned
// integers, bools, nulls, strings, or homogeneous arrays of unsigned integers
// or strings, so a ~100-line recursive-descent parser covers them without an
// external dependency. Writers emit the same subset, so every value that
// round-trips through these helpers is reconstructed bit-for-bit.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace restore::flatjson {

struct Value {
  enum class Kind {
    kString,
    kUint,
    kBool,
    kNull,
    kUintArray,
    kStringArray,
  } kind = Kind::kNull;
  std::string str;
  u64 uint = 0;
  bool boolean = false;
  std::vector<u64> array;
  std::vector<std::string> str_array;
};

using Object = std::map<std::string, Value>;

// Parse one flat object; nullopt on malformed input or trailing bytes. An
// empty array parses as kUintArray; accessors treat that as an empty array of
// either element type.
std::optional<Object> parse(std::string_view text);

// ---- writers ----

// Append `s` as a quoted JSON string with ", \, and control escapes.
void append_string(std::string& out, std::string_view s);

// Append `"key":value` (no separators; callers manage commas and braces).
void append_field(std::string& out, std::string_view key, u64 value);
void append_field(std::string& out, std::string_view key, bool value);
void append_field(std::string& out, std::string_view key, std::string_view value);
void append_field(std::string& out, std::string_view key,
                  const std::vector<u64>& values);
void append_field(std::string& out, std::string_view key,
                  const std::vector<std::string>& values);

// ---- readers ----

const Value* find(const Object& obj, const std::string& key);
std::optional<u64> get_uint(const Object& obj, const std::string& key);
std::optional<bool> get_bool(const Object& obj, const std::string& key);
std::optional<std::string> get_string(const Object& obj, const std::string& key);

}  // namespace restore::flatjson
