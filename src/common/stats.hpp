// Statistics helpers for fault-injection campaigns: online moments, binomial
// proportion confidence intervals (the paper quotes "error margin of less than
// 0.9% at a 95% confidence level"), and latency-binned histograms matching the
// x-axes of the paper's Figures 2 and 4-6.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace restore {

// Welford online mean/variance.
class OnlineStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance (n-1)
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Wilson score interval for a binomial proportion.
struct ProportionCi {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  // Half-width of the interval; the paper's "error margin".
  double margin() const noexcept { return (hi - lo) / 2.0; }
};

ProportionCi wilson_interval(std::size_t successes, std::size_t trials, double z = 1.96);

// The latency bins used on the x-axis of Figure 2 (instructions elapsed from
// injection to first symptom). A latency of `kNever` means "no symptom".
inline constexpr u64 kNever = std::numeric_limits<u64>::max();

// Returns the standard Figure 2 bin edges: 25, 50, 100, 200, 500, 1k, 10k, 100k, inf.
std::vector<u64> figure2_latency_bins();

// Returns the checkpoint-interval sweep used in Figures 4-7:
// 25, 50, 100, 200, 500, 1000, 2000.
std::vector<u64> checkpoint_interval_sweep();

// A histogram over arbitrary named categories, cross-tabulated by latency bin.
// Used to produce the stacked-bar data of Figures 2 and 4-6: for a given
// maximum detection latency (bin edge), how many trials fall in each category?
class CategoryLatencyTable {
 public:
  explicit CategoryLatencyTable(std::vector<u64> bin_edges);

  // Record one trial: `category` with symptom latency `latency` (kNever if the
  // category is latency-independent, e.g. "masked").
  void add(const std::string& category, u64 latency);

  std::size_t total() const noexcept { return total_; }

  // Number of trials of `category` whose latency is <= `max_latency`.
  std::size_t count_within(const std::string& category, u64 max_latency) const;

  // Number of trials of `category` regardless of latency.
  std::size_t count(const std::string& category) const;

  const std::vector<u64>& bin_edges() const noexcept { return edges_; }
  std::vector<std::string> categories() const;

 private:
  std::vector<u64> edges_;
  std::map<std::string, std::vector<u64>> latencies_;  // sorted lazily on query
  std::size_t total_ = 0;
};

}  // namespace restore
