// A small fixed-size thread pool used to run independent fault-injection
// trials in parallel. Each task is a void() callable; parallel_for distributes
// an index range. The pool degrades gracefully to inline execution when
// constructed with zero workers (useful on single-core hosts and in tests).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace restore {

class ThreadPool {
 public:
  // `workers` == 0 means "run tasks inline on the calling thread".
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  // Enqueue a task. Tasks must not throw; exceptions terminate the program.
  void submit(std::function<void()> task);

  // Block until all submitted tasks have finished.
  void wait_idle();

  // Run body(i) for i in [0, count), distributing across the pool and
  // blocking until all iterations complete. Indices are block-chunked (a few
  // chunks per worker by default) so queue contention is O(workers), not
  // O(count). `chunk_size` overrides the block size; 0 picks automatically,
  // and values larger than the range degrade gracefully to a single chunk.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                    std::size_t chunk_size = 0);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  Mutex mutex_;
  CondVar cv_task_;
  CondVar cv_idle_;
  std::deque<std::function<void()>> queue_ RESTORE_GUARDED_BY(mutex_);
  std::size_t in_flight_ RESTORE_GUARDED_BY(mutex_) = 0;
  bool stopping_ RESTORE_GUARDED_BY(mutex_) = false;
};

// Recommended worker count for campaign runners: hardware concurrency minus
// one (never less than zero workers; zero means inline execution).
std::size_t default_campaign_workers();

}  // namespace restore
