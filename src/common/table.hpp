// Plain-text table rendering for bench binaries that regenerate the paper's
// figures as rows/series on stdout.
#pragma once

#include <string>
#include <vector>

namespace restore {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::string render() const;

  // Convenience formatting.
  static std::string fmt_pct(double fraction, int decimals = 2);   // 0.0712 -> "7.12%"
  static std::string fmt_f(double value, int decimals = 3);
  static std::string fmt_u(unsigned long long value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace restore
