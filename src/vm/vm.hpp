// The architectural ("virtual machine") simulator: executes SRA-64 programs
// one instruction at a time with exact ISA semantics. This is the model the
// paper uses for its §3.1 fault-injection study ("an instruction set
// simulator capable of running Alpha ISA binaries"), and it doubles as the
// golden reference for the microarchitectural core.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "isa/program.hpp"
#include "vm/memory.hpp"
#include "vm/retired.hpp"

namespace restore::vm {

// A pure architectural snapshot: what ReStore's checkpoint hardware saves.
struct ArchSnapshot {
  std::array<u64, isa::kNumArchRegs> regs{};
  u64 pc = 0;
  bool operator==(const ArchSnapshot&) const = default;
};

// Vm has value semantics: copying forks the machine, and copy-on-write pages
// (PagedMemory) make the fork O(mapped pages). The VM campaign positions each
// trial by forking an incrementally advanced golden Vm instead of
// re-executing from program start.
class Vm {
 public:
  enum class Status : u8 {
    kRunning,
    kHalted,   // executed HALT
    kFaulted,  // raised an ISA exception (no OS handler in this world)
  };

  explicit Vm(const isa::Program& program);

  Status status() const noexcept { return status_; }
  bool running() const noexcept { return status_ == Status::kRunning; }
  isa::ExceptionKind fault() const noexcept { return fault_; }

  u64 pc() const noexcept { return pc_; }
  // Register read; r31 always reads zero.
  u64 reg(u8 index) const noexcept;
  void set_reg(u8 index, u64 value) noexcept;

  PagedMemory& memory() noexcept { return memory_; }
  const PagedMemory& memory() const noexcept { return memory_; }

  const std::string& output() const noexcept { return output_; }
  u64 retired_count() const noexcept { return retired_count_; }

  ArchSnapshot snapshot() const noexcept;
  // Restore registers+pc (memory is restored separately via undo logs).
  void restore(const ArchSnapshot& snap) noexcept;

  // Execute one instruction. Returns the retirement record, or nullopt if the
  // machine is not running. A faulting instruction still returns a record
  // (with `fault` set) and transitions the VM to kFaulted.
  std::optional<Retired> step();

  // Run until halt/fault or until `max_insns` more instructions retire.
  // Returns the number of instructions retired by this call.
  u64 run(u64 max_insns);

 private:
  PagedMemory memory_;
  std::array<u64, isa::kNumArchRegs> regs_{};
  u64 pc_ = 0;
  Status status_ = Status::kRunning;
  isa::ExceptionKind fault_ = isa::ExceptionKind::kNone;
  std::string output_;
  u64 retired_count_ = 0;
};

}  // namespace restore::vm
