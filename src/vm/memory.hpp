// Sparse paged 64-bit virtual memory with per-page permissions.
//
// The paper relies on the virtual address space being much larger than the
// workload footprint: "a random corruption in a pointer value will result in
// a pointer to an invalid or unmapped virtual page" (§3.1). This memory model
// reproduces that: only explicitly mapped 4 KiB pages exist, and every access
// is checked for translation, alignment, and protection.
//
// PagedMemory has value semantics (deep copy) so whole-machine snapshots used
// by the fault-injection harness and the checkpoint store are plain copies.
#pragma once

#include <map>
#include <vector>

#include "common/types.hpp"
#include "isa/exception.hpp"
#include "isa/program.hpp"

namespace restore::vm {

inline constexpr u64 kPageBytes = 4096;
inline constexpr u64 kPageShift = 12;

struct MemAccess {
  isa::ExceptionKind fault = isa::ExceptionKind::kNone;
  u64 value = 0;  // loaded value (zero-extended); unused for stores
  bool ok() const noexcept { return fault == isa::ExceptionKind::kNone; }
};

class PagedMemory {
 public:
  // Map [vaddr, vaddr+bytes) with `perms`, zero-filled. Extends/overwrites
  // permissions of already-mapped pages.
  void map_region(u64 vaddr, u64 bytes, isa::Perms perms);

  // Copy a program image (all segments + stack region) into memory.
  void load_program(const isa::Program& program);

  // Aligned data access of size 1/2/4/8. Checks translation, alignment, and
  // permissions; loads zero-extend.
  MemAccess load(u64 vaddr, unsigned bytes) const noexcept;
  MemAccess store(u64 vaddr, unsigned bytes, u64 value) noexcept;

  // Instruction fetch (4 bytes, requires exec permission).
  MemAccess fetch(u64 vaddr) const noexcept;

  // Translation/permission probe without data movement; returns the fault an
  // access of `bytes` at `vaddr` would raise (kNone if it would succeed).
  isa::ExceptionKind probe(u64 vaddr, unsigned bytes, bool write) const noexcept;

  bool is_mapped(u64 vaddr) const noexcept;

  // Raw byte access for loaders and state comparison; addresses must be
  // mapped (throws std::out_of_range otherwise).
  u8 read_byte(u64 vaddr) const;
  void write_byte(u64 vaddr, u8 value);

  // Deep equality (used by golden-state comparison at end of trial).
  bool operator==(const PagedMemory& other) const = default;

  // 64-bit FNV-style digest over page contents (used for cheap comparison).
  u64 digest() const noexcept;

  std::size_t mapped_pages() const noexcept { return pages_.size(); }

 private:
  struct Page {
    isa::Perms perms = isa::Perms::kNone;
    std::vector<u8> data;
    bool operator==(const Page&) const = default;
  };

  const Page* find_page(u64 vaddr) const noexcept;
  Page* find_page(u64 vaddr) noexcept;

  std::map<u64, Page> pages_;  // keyed by page index (vaddr >> kPageShift)
};

}  // namespace restore::vm
