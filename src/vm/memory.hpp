// Sparse paged 64-bit virtual memory with per-page permissions.
//
// The paper relies on the virtual address space being much larger than the
// workload footprint: "a random corruption in a pointer value will result in
// a pointer to an invalid or unmapped virtual page" (§3.1). This memory model
// reproduces that: only explicitly mapped 4 KiB pages exist, and every access
// is checked for translation, alignment, and protection.
//
// PagedMemory has value semantics, implemented with copy-on-write pages: a
// copy shares immutable page payloads with its source via atomic refcounts
// and clones a page only on first write. Whole-machine snapshots used by the
// fault-injection harness and the checkpoint store are therefore
// O(mapped-page count), not O(footprint bytes), and a campaign can fork
// thousands of trial machines from one golden snapshot cheaply.
//
// Each page payload carries a lazily computed content digest, so digest()
// only rehashes pages written since the last digest and two memories that
// share pages compare (and hash) in O(pages) pointer identity checks.
//
// Thread-safety contract (what the campaign ThreadPool relies on): distinct
// PagedMemory objects may be read, written, and copied concurrently — even
// when they share pages — PROVIDED that no thread mutates a memory while
// another thread is copying that same object. In practice: fork trial
// machines from a golden snapshot that is no longer being advanced, then let
// each worker mutate only its own fork.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "common/budget.hpp"
#include "common/types.hpp"
#include "isa/exception.hpp"
#include "isa/program.hpp"

namespace restore::vm {

inline constexpr u64 kPageBytes = 4096;
inline constexpr u64 kPageShift = 12;

struct MemAccess {
  isa::ExceptionKind fault = isa::ExceptionKind::kNone;
  u64 value = 0;  // loaded value (zero-extended); unused for stores
  bool ok() const noexcept { return fault == isa::ExceptionKind::kNone; }
};

class PagedMemory {
 public:
  // Map [vaddr, vaddr+bytes) with `perms`, zero-filled. Extends/overwrites
  // permissions of already-mapped pages. Throws BudgetExceeded when the
  // mapping would push the page count past a configured page budget.
  void map_region(u64 vaddr, u64 bytes, isa::Perms perms);

  // Cap the number of mapped pages (0 = unlimited, the default). A trial
  // machine driven by corrupted state cannot grow the sparse page map without
  // bound: map_region throws BudgetExceeded (deterministically — the limit is
  // a simulated quantity) once the cap is reached. The budget travels with
  // copies, so every trial fork of a budgeted machine inherits it.
  void set_page_budget(u64 max_pages) noexcept { page_budget_ = max_pages; }
  u64 page_budget() const noexcept { return page_budget_; }

  // Copy a program image (all segments + stack region) into memory.
  void load_program(const isa::Program& program);

  // Aligned data access of size 1/2/4/8. Checks translation, alignment, and
  // permissions; loads zero-extend.
  MemAccess load(u64 vaddr, unsigned bytes) const noexcept;
  MemAccess store(u64 vaddr, unsigned bytes, u64 value) noexcept;

  // Instruction fetch (4 bytes, requires exec permission).
  MemAccess fetch(u64 vaddr) const noexcept;

  // Translation/permission probe without data movement; returns the fault an
  // access of `bytes` at `vaddr` would raise (kNone if it would succeed).
  isa::ExceptionKind probe(u64 vaddr, unsigned bytes, bool write) const noexcept;

  bool is_mapped(u64 vaddr) const noexcept;

  // Raw byte access for loaders and state comparison; addresses must be
  // mapped (throws UnmappedAccessError — a std::out_of_range carrying the
  // faulting address, access size and direction — otherwise).
  u8 read_byte(u64 vaddr) const;
  void write_byte(u64 vaddr, u8 value);

  // Deep equality (used by golden-state comparison at end of trial).
  // Pointer-identical shared pages compare equal without touching bytes.
  bool operator==(const PagedMemory& other) const noexcept;

  // 64-bit FNV-style digest over page contents (used for cheap comparison).
  // Per-page digests are cached on the shared page payload and invalidated
  // on write, so only dirty pages are rehashed.
  u64 digest() const noexcept;

  // Same digest computed from scratch, bypassing every cache (test/bench
  // oracle for digest-cache coherence).
  u64 recompute_digest() const noexcept;

  std::size_t mapped_pages() const noexcept { return pages_.size(); }

  // Page indices of all mapped pages, ascending (tools/bench introspection).
  std::vector<u64> mapped_page_indices() const;

  // Number of pages whose payload is physically shared with `other` (same
  // page index, same underlying buffer). Diagnostic for COW behaviour.
  std::size_t shared_pages_with(const PagedMemory& other) const noexcept;

 private:
  struct Page {
    std::array<u8, kPageBytes> bytes;
    // Cached content digest; 0 = not yet computed (page_digest() never
    // yields 0). Benign-race safe: concurrent computes store the same value.
    mutable std::atomic<u64> digest_cache{0};

    Page() { bytes.fill(0); }
    Page(const Page& other) : bytes(other.bytes) {
      digest_cache.store(other.digest_cache.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
    Page& operator=(const Page&) = delete;
  };

  struct Entry {
    isa::Perms perms = isa::Perms::kNone;
    // Shared payload: immutable whenever the refcount exceeds one. Perms
    // live outside the payload so permission changes never force a clone.
    std::shared_ptr<Page> page;
  };

  // All freshly mapped pages alias one global zero page until first write.
  static const std::shared_ptr<Page>& zero_page();

  // FNV-style digest of one page's contents (never returns 0).
  static u64 page_contents_digest(const Page& page) noexcept;
  // Cached wrapper around page_contents_digest.
  static u64 page_digest(const Page& page) noexcept;

  const Entry* find_entry(u64 vaddr) const noexcept;
  Entry* find_entry(u64 vaddr) noexcept;

  // Copy-on-write mutator: returns a uniquely owned page for in-place
  // writes, cloning the shared payload if needed, and invalidates the
  // page's cached digest.
  Page& mutable_page(Entry& entry);

  // Page table: (page index, entry) pairs sorted by index. A workload maps a
  // few dozen pages, so a flat sorted vector beats a node-based map on every
  // translation (binary search over a cache-resident array, no pointer
  // chasing) — and translation sits on the hot path of every fetch, load and
  // store of both simulators. Iteration stays in ascending page order, which
  // digest()/operator== rely on for determinism.
  std::vector<std::pair<u64, Entry>> pages_;
  u64 page_budget_ = 0;  // max mapped pages; 0 = unlimited
};

}  // namespace restore::vm
