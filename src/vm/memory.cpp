#include "vm/memory.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace restore::vm {

using isa::ExceptionKind;
using isa::Perms;

void PagedMemory::map_region(u64 vaddr, u64 bytes, Perms perms) {
  if (bytes == 0) return;
  const u64 first = vaddr >> kPageShift;
  const u64 last = (vaddr + bytes - 1) >> kPageShift;
  for (u64 page = first; page <= last; ++page) {
    auto& entry = pages_[page];
    if (entry.data.empty()) entry.data.assign(kPageBytes, 0);
    entry.perms = entry.perms | perms;
  }
}

void PagedMemory::load_program(const isa::Program& program) {
  for (const auto& seg : program.segments) {
    map_region(seg.vaddr, seg.bytes.size(), seg.perms);
    for (std::size_t i = 0; i < seg.bytes.size(); ++i) {
      write_byte(seg.vaddr + i, seg.bytes[i]);
    }
  }
  if (program.stack_bytes > 0) {
    // Stack occupies [stack_top - stack_bytes, stack_top + 16) so that the
    // initial frame and a small red zone above sp are valid.
    map_region(program.stack_top - program.stack_bytes, program.stack_bytes + 16,
               Perms::kReadWrite);
  }
}

const PagedMemory::Page* PagedMemory::find_page(u64 vaddr) const noexcept {
  const auto it = pages_.find(vaddr >> kPageShift);
  return it == pages_.end() ? nullptr : &it->second;
}

PagedMemory::Page* PagedMemory::find_page(u64 vaddr) noexcept {
  const auto it = pages_.find(vaddr >> kPageShift);
  return it == pages_.end() ? nullptr : &it->second;
}

ExceptionKind PagedMemory::probe(u64 vaddr, unsigned bytes, bool write) const noexcept {
  assert(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8);
  if (vaddr % bytes != 0) return ExceptionKind::kMemAlignment;
  const Page* page = find_page(vaddr);
  if (page == nullptr) return ExceptionKind::kMemTranslation;
  const Perms wanted = write ? Perms::kWrite : Perms::kRead;
  if (!has_perm(page->perms, wanted)) return ExceptionKind::kMemProtection;
  return ExceptionKind::kNone;
}

MemAccess PagedMemory::load(u64 vaddr, unsigned bytes) const noexcept {
  MemAccess result;
  result.fault = probe(vaddr, bytes, /*write=*/false);
  if (!result.ok()) return result;
  const Page* page = find_page(vaddr);
  const u64 offset = vaddr & (kPageBytes - 1);
  u64 value = 0;
  std::memcpy(&value, page->data.data() + offset, bytes);  // little-endian host
  result.value = value;
  return result;
}

MemAccess PagedMemory::store(u64 vaddr, unsigned bytes, u64 value) noexcept {
  MemAccess result;
  result.fault = probe(vaddr, bytes, /*write=*/true);
  if (!result.ok()) return result;
  Page* page = find_page(vaddr);
  const u64 offset = vaddr & (kPageBytes - 1);
  std::memcpy(page->data.data() + offset, &value, bytes);
  return result;
}

MemAccess PagedMemory::fetch(u64 vaddr) const noexcept {
  MemAccess result;
  if (vaddr % 4 != 0) {
    result.fault = ExceptionKind::kMemAlignment;
    return result;
  }
  const Page* page = find_page(vaddr);
  if (page == nullptr) {
    result.fault = ExceptionKind::kMemTranslation;
    return result;
  }
  if (!has_perm(page->perms, Perms::kExec)) {
    result.fault = ExceptionKind::kMemProtection;
    return result;
  }
  u32 word = 0;
  std::memcpy(&word, page->data.data() + (vaddr & (kPageBytes - 1)), 4);
  result.value = word;
  return result;
}

bool PagedMemory::is_mapped(u64 vaddr) const noexcept {
  return find_page(vaddr) != nullptr;
}

u8 PagedMemory::read_byte(u64 vaddr) const {
  const Page* page = find_page(vaddr);
  if (page == nullptr) throw std::out_of_range("read_byte: unmapped address");
  return page->data[vaddr & (kPageBytes - 1)];
}

void PagedMemory::write_byte(u64 vaddr, u8 value) {
  Page* page = find_page(vaddr);
  if (page == nullptr) throw std::out_of_range("write_byte: unmapped address");
  page->data[vaddr & (kPageBytes - 1)] = value;
}

u64 PagedMemory::digest() const noexcept {
  u64 hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](u64 v) {
    hash ^= v;
    hash *= 0x100000001b3ULL;
    hash ^= hash >> 32;
  };
  for (const auto& [index, page] : pages_) {
    mix(index);
    mix(static_cast<u64>(page.perms));
    for (std::size_t i = 0; i < page.data.size(); i += 8) {
      u64 chunk = 0;
      std::memcpy(&chunk, page.data.data() + i, 8);
      mix(chunk);
    }
  }
  return hash;
}

}  // namespace restore::vm
