#include "vm/memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "vm/errors.hpp"

namespace restore::vm {

using isa::ExceptionKind;
using isa::Perms;

const std::shared_ptr<PagedMemory::Page>& PagedMemory::zero_page() {
  // simlint: allow(PERF-ALLOC) -- one-time static, shared by every mapping
  static const std::shared_ptr<Page> zero = std::make_shared<Page>();
  return zero;
}

void PagedMemory::map_region(u64 vaddr, u64 bytes, Perms perms) {
  if (bytes == 0) return;
  const u64 first = vaddr >> kPageShift;
  const u64 last = (vaddr + bytes - 1) >> kPageShift;
  for (u64 page = first; page <= last; ++page) {
    auto it = std::lower_bound(
        pages_.begin(), pages_.end(), page,
        [](const auto& slot, u64 index) { return slot.first < index; });
    if (it == pages_.end() || it->first != page) {
      if (page_budget_ != 0 && pages_.size() >= page_budget_) {
        throw BudgetExceeded(BudgetKind::kPages, page_budget_, pages_.size() + 1);
      }
      it = pages_.insert(it, {page, Entry{}});
    }
    auto& entry = it->second;
    if (entry.page == nullptr) entry.page = zero_page();
    entry.perms = entry.perms | perms;
  }
}

void PagedMemory::load_program(const isa::Program& program) {
  for (const auto& seg : program.segments) {
    map_region(seg.vaddr, seg.bytes.size(), seg.perms);
    for (std::size_t i = 0; i < seg.bytes.size(); ++i) {
      write_byte(seg.vaddr + i, seg.bytes[i]);
    }
  }
  if (program.stack_bytes > 0) {
    // Stack occupies [stack_top - stack_bytes, stack_top + 16) so that the
    // initial frame and a small red zone above sp are valid.
    map_region(program.stack_top - program.stack_bytes, program.stack_bytes + 16,
               Perms::kReadWrite);
  }
}

const PagedMemory::Entry* PagedMemory::find_entry(u64 vaddr) const noexcept {
  const u64 index = vaddr >> kPageShift;
  std::size_t lo = 0, hi = pages_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pages_[mid].first < index) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == pages_.size() || pages_[lo].first != index) return nullptr;
  return &pages_[lo].second;
}

PagedMemory::Entry* PagedMemory::find_entry(u64 vaddr) noexcept {
  return const_cast<Entry*>(
      static_cast<const PagedMemory*>(this)->find_entry(vaddr));
}

PagedMemory::Page& PagedMemory::mutable_page(Entry& entry) {
  // Sole owner: mutate in place (the payload cannot be visible to any other
  // memory). Shared: clone first so siblings and snapshots keep the old
  // bytes. use_count can only *decrease* concurrently under the documented
  // contract (nobody copies this memory while we mutate it), so a reading of
  // 1 is stable and a conservative clone on >1 is always safe.
  if (entry.page.use_count() > 1) {
    // simlint: allow(PERF-ALLOC) -- copy-on-write clone; pages a trial never touches stay shared
    entry.page = std::make_shared<Page>(*entry.page);
  }
  entry.page->digest_cache.store(0, std::memory_order_relaxed);
  return *entry.page;
}

ExceptionKind PagedMemory::probe(u64 vaddr, unsigned bytes, bool write) const noexcept {
  assert(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8);
  if (vaddr % bytes != 0) return ExceptionKind::kMemAlignment;
  const Entry* entry = find_entry(vaddr);
  if (entry == nullptr) return ExceptionKind::kMemTranslation;
  const Perms wanted = write ? Perms::kWrite : Perms::kRead;
  if (!has_perm(entry->perms, wanted)) return ExceptionKind::kMemProtection;
  return ExceptionKind::kNone;
}

MemAccess PagedMemory::load(u64 vaddr, unsigned bytes) const noexcept {
  MemAccess result;
  result.fault = probe(vaddr, bytes, /*write=*/false);
  if (!result.ok()) return result;
  const Entry* entry = find_entry(vaddr);
  const u64 offset = vaddr & (kPageBytes - 1);
  u64 value = 0;
  std::memcpy(&value, entry->page->bytes.data() + offset, bytes);  // little-endian host
  result.value = value;
  return result;
}

MemAccess PagedMemory::store(u64 vaddr, unsigned bytes, u64 value) noexcept {
  MemAccess result;
  result.fault = probe(vaddr, bytes, /*write=*/true);
  if (!result.ok()) return result;
  Entry* entry = find_entry(vaddr);
  Page& page = mutable_page(*entry);
  const u64 offset = vaddr & (kPageBytes - 1);
  std::memcpy(page.bytes.data() + offset, &value, bytes);
  return result;
}

MemAccess PagedMemory::fetch(u64 vaddr) const noexcept {
  MemAccess result;
  if (vaddr % 4 != 0) {
    result.fault = ExceptionKind::kMemAlignment;
    return result;
  }
  const Entry* entry = find_entry(vaddr);
  if (entry == nullptr) {
    result.fault = ExceptionKind::kMemTranslation;
    return result;
  }
  if (!has_perm(entry->perms, Perms::kExec)) {
    result.fault = ExceptionKind::kMemProtection;
    return result;
  }
  u32 word = 0;
  std::memcpy(&word, entry->page->bytes.data() + (vaddr & (kPageBytes - 1)), 4);
  result.value = word;
  return result;
}

bool PagedMemory::is_mapped(u64 vaddr) const noexcept {
  return find_entry(vaddr) != nullptr;
}

u8 PagedMemory::read_byte(u64 vaddr) const {
  const Entry* entry = find_entry(vaddr);
  if (entry == nullptr) throw UnmappedAccessError(vaddr, 1, /*write=*/false);
  return entry->page->bytes[vaddr & (kPageBytes - 1)];
}

void PagedMemory::write_byte(u64 vaddr, u8 value) {
  Entry* entry = find_entry(vaddr);
  if (entry == nullptr) throw UnmappedAccessError(vaddr, 1, /*write=*/true);
  mutable_page(*entry).bytes[vaddr & (kPageBytes - 1)] = value;
}

bool PagedMemory::operator==(const PagedMemory& other) const noexcept {
  if (pages_.size() != other.pages_.size()) return false;
  auto it = pages_.begin();
  auto jt = other.pages_.begin();
  for (; it != pages_.end(); ++it, ++jt) {
    if (it->first != jt->first) return false;
    if (it->second.perms != jt->second.perms) return false;
    if (it->second.page == jt->second.page) continue;  // shared: equal for free
    if (it->second.page->bytes != jt->second.page->bytes) return false;
  }
  return true;
}

u64 PagedMemory::page_contents_digest(const Page& page) noexcept {
  u64 hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < kPageBytes; i += 8) {
    u64 chunk = 0;
    std::memcpy(&chunk, page.bytes.data() + i, 8);
    hash ^= chunk;
    hash *= 0x100000001b3ULL;
    hash ^= hash >> 32;
  }
  // 0 is the "not computed" sentinel in the cache; remap deterministically.
  return hash == 0 ? 0x9e3779b97f4a7c15ULL : hash;
}

u64 PagedMemory::page_digest(const Page& page) noexcept {
  u64 cached = page.digest_cache.load(std::memory_order_relaxed);
  if (cached == 0) {
    cached = page_contents_digest(page);
    page.digest_cache.store(cached, std::memory_order_relaxed);
  }
  return cached;
}

u64 PagedMemory::digest() const noexcept {
  u64 hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](u64 v) {
    hash ^= v;
    hash *= 0x100000001b3ULL;
    hash ^= hash >> 32;
  };
  for (const auto& [index, entry] : pages_) {
    mix(index);
    mix(static_cast<u64>(entry.perms));
    mix(page_digest(*entry.page));
  }
  return hash;
}

u64 PagedMemory::recompute_digest() const noexcept {
  u64 hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](u64 v) {
    hash ^= v;
    hash *= 0x100000001b3ULL;
    hash ^= hash >> 32;
  };
  for (const auto& [index, entry] : pages_) {
    mix(index);
    mix(static_cast<u64>(entry.perms));
    mix(page_contents_digest(*entry.page));
  }
  return hash;
}

std::vector<u64> PagedMemory::mapped_page_indices() const {
  std::vector<u64> indices;
  indices.reserve(pages_.size());
  for (const auto& [index, entry] : pages_) indices.push_back(index);
  return indices;
}

std::size_t PagedMemory::shared_pages_with(const PagedMemory& other) const noexcept {
  std::size_t shared = 0;
  auto it = pages_.begin();
  auto jt = other.pages_.begin();
  while (it != pages_.end() && jt != other.pages_.end()) {
    if (it->first < jt->first) {
      ++it;
    } else if (jt->first < it->first) {
      ++jt;
    } else {
      if (it->second.page == jt->second.page) ++shared;
      ++it;
      ++jt;
    }
  }
  return shared;
}

}  // namespace restore::vm
