// The per-instruction retirement record. Both the architectural VM and the
// out-of-order core produce this stream; fault-injection trials classify
// outcomes by comparing a faulty stream against a golden one (paper §4.2:
// comparison "against an architectural level simulator").
#pragma once

#include "common/types.hpp"
#include "isa/exception.hpp"

namespace restore::vm {

struct Retired {
  u64 pc = 0;
  u32 insn = 0;

  bool wrote_reg = false;
  u8 rd = 31;
  u64 rd_value = 0;

  bool is_store = false;
  u64 store_addr = 0;
  u8 store_bytes = 0;
  u64 store_data = 0;
  u64 store_old_data = 0;  // previous memory contents (feeds checkpoint undo logs)

  bool is_load = false;
  u64 load_addr = 0;

  bool is_ctrl = false;        // conditional branch or jump
  bool is_cond_branch = false;
  bool taken = false;
  u64 next_pc = 0;

  bool is_out = false;  // OUT instruction: emitted `out_byte` to the device
  u8 out_byte = 0;
  bool is_sync = false;  // synchronizing instruction (forces a checkpoint)

  bool halted = false;
  isa::ExceptionKind fault = isa::ExceptionKind::kNone;

  // Architectural effect equality: do two retirement records describe the
  // same committed instruction? (Timing-independent fields only.)
  bool same_effect(const Retired& other) const noexcept {
    return pc == other.pc && next_pc == other.next_pc &&
           wrote_reg == other.wrote_reg && rd == other.rd &&
           rd_value == other.rd_value && is_store == other.is_store &&
           store_addr == other.store_addr && store_bytes == other.store_bytes &&
           store_data == other.store_data && fault == other.fault &&
           is_out == other.is_out && out_byte == other.out_byte &&
           is_sync == other.is_sync && halted == other.halted;
  }
};

}  // namespace restore::vm
