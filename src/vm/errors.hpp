// Typed trial-abort errors raised by the simulator itself (as opposed to
// faults of the *simulated* machine, which are isa::ExceptionKind values).
//
// Injected faults drive machines into arbitrary state, and some of that state
// reaches host-level interfaces — raw byte access to unmapped addresses, page
// budgets, registry lookups. These errors carry enough deterministic context
// (address, size, direction) for a trial trace record, and the campaign
// containment boundary (faultinject/containment.hpp) converts them into the
// `sim-abort` outcome instead of letting them kill a multi-hour campaign.
#pragma once

#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace restore::vm {

namespace detail {

inline std::string hex_u64(u64 value) {
  static const char* digits = "0123456789abcdef";
  std::string out = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned nibble = (value >> shift) & 0xF;
    if (nibble != 0 || started || shift == 0) {
      out.push_back(digits[nibble]);
      started = true;
    }
  }
  return out;
}

}  // namespace detail

// Raw byte access (read_byte/write_byte) touched an unmapped address. Keeps
// the out_of_range base so pre-existing callers that catch std::out_of_range
// still work, but carries the faulting address, access size and direction.
class UnmappedAccessError : public std::out_of_range {
 public:
  UnmappedAccessError(u64 vaddr, unsigned bytes, bool write)
      : std::out_of_range(std::string(write ? "write" : "read") + " of " +
                          std::to_string(bytes) + " byte(s) at unmapped address " +
                          detail::hex_u64(vaddr)),
        vaddr_(vaddr),
        bytes_(bytes),
        write_(write) {}

  u64 vaddr() const noexcept { return vaddr_; }
  unsigned bytes() const noexcept { return bytes_; }
  bool is_write() const noexcept { return write_; }

 private:
  u64 vaddr_;
  unsigned bytes_;
  bool write_;
};

}  // namespace restore::vm
