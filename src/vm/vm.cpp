#include "vm/vm.hpp"

#include "common/bits.hpp"
#include "isa/instruction.hpp"
#include "vm/exec.hpp"

namespace restore::vm {

using isa::DecodedInst;
using isa::ExceptionKind;
using isa::Opcode;

Vm::Vm(const isa::Program& program) {
  memory_.load_program(program);
  pc_ = program.entry;
  regs_.fill(0);
  regs_[30] = program.stack_top;  // sp
}

u64 Vm::reg(u8 index) const noexcept {
  return index == isa::kZeroReg ? 0 : regs_[index & 31];
}

void Vm::set_reg(u8 index, u64 value) noexcept {
  if (index != isa::kZeroReg) regs_[index & 31] = value;
}

ArchSnapshot Vm::snapshot() const noexcept {
  ArchSnapshot snap;
  snap.regs = regs_;
  snap.regs[isa::kZeroReg] = 0;
  snap.pc = pc_;
  return snap;
}

void Vm::restore(const ArchSnapshot& snap) noexcept {
  regs_ = snap.regs;
  pc_ = snap.pc;
  status_ = Status::kRunning;
  fault_ = ExceptionKind::kNone;
}

std::optional<Retired> Vm::step() {
  if (status_ != Status::kRunning) return std::nullopt;

  Retired rec;
  rec.pc = pc_;
  rec.next_pc = pc_ + 4;

  auto take_fault = [&](ExceptionKind kind) {
    rec.fault = kind;
    status_ = Status::kFaulted;
    fault_ = kind;
    ++retired_count_;
    return rec;
  };

  const MemAccess fetched = memory_.fetch(pc_);
  if (!fetched.ok()) return take_fault(fetched.fault);
  rec.insn = static_cast<u32>(fetched.value);

  const DecodedInst inst = isa::decode(rec.insn);
  if (!inst.valid) return take_fault(ExceptionKind::kIllegalInstruction);

  const u64 rs1 = reg(inst.rs1);
  const u64 rs2 = reg(inst.rs2);

  switch (isa::format_of(inst.op)) {
    case isa::Format::kRType:
    case isa::Format::kIType: {
      const ExecResult result = exec_int_op(inst, rs1, rs2);
      if (!result.ok()) return take_fault(result.fault);
      if (inst.writes_reg()) {
        rec.wrote_reg = true;
        rec.rd = inst.rd;
        rec.rd_value = result.value;
        set_reg(inst.rd, result.value);
      }
      break;
    }
    case isa::Format::kLoad: {
      const u64 addr = effective_address(inst, rs1);
      rec.is_load = true;
      rec.load_addr = addr;
      const MemAccess access = memory_.load(addr, isa::mem_access_bytes(inst.op));
      if (!access.ok()) return take_fault(access.fault);
      const u64 value = extend_load(inst.op, access.value);
      if (inst.writes_reg()) {
        rec.wrote_reg = true;
        rec.rd = inst.rd;
        rec.rd_value = value;
        set_reg(inst.rd, value);
      }
      break;
    }
    case isa::Format::kStore: {
      const u64 addr = effective_address(inst, rs1);
      const unsigned bytes = isa::mem_access_bytes(inst.op);
      rec.is_store = true;
      rec.store_addr = addr;
      rec.store_bytes = static_cast<u8>(bytes);
      rec.store_data = rs2 & mask64(bytes * 8);
      const MemAccess old = memory_.load(addr, bytes);
      if (old.ok()) rec.store_old_data = old.value;
      const MemAccess access = memory_.store(addr, bytes, rs2);
      if (!access.ok()) return take_fault(access.fault);
      break;
    }
    case isa::Format::kBranch: {
      rec.is_ctrl = true;
      rec.is_cond_branch = true;
      rec.taken = eval_branch(inst.op, rs1, rs2);
      if (rec.taken) rec.next_pc = pc_ + 4 + static_cast<u64>(inst.imm);
      break;
    }
    case isa::Format::kJal: {
      rec.is_ctrl = true;
      rec.taken = true;
      rec.next_pc = pc_ + 4 + static_cast<u64>(inst.imm);
      if (inst.writes_reg()) {
        rec.wrote_reg = true;
        rec.rd = inst.rd;
        rec.rd_value = pc_ + 4;
        set_reg(inst.rd, pc_ + 4);
      }
      break;
    }
    case isa::Format::kJalr: {
      rec.is_ctrl = true;
      rec.taken = true;
      rec.next_pc = jalr_target(inst, rs1);
      if (inst.writes_reg()) {
        rec.wrote_reg = true;
        rec.rd = inst.rd;
        rec.rd_value = pc_ + 4;
        set_reg(inst.rd, pc_ + 4);
      }
      break;
    }
    case isa::Format::kSystem: {
      if (inst.op == Opcode::kHalt) {
        rec.halted = true;
        status_ = Status::kHalted;
      } else if (inst.op == Opcode::kSync) {
        rec.is_sync = true;  // single-core machine: ordering is a no-op
      } else {  // OUT
        rec.is_out = true;
        rec.out_byte = static_cast<u8>(reg(inst.rs1) & 0xFF);
        output_.push_back(static_cast<char>(rec.out_byte));
      }
      break;
    }
    case isa::Format::kIllegal:
      return take_fault(ExceptionKind::kIllegalInstruction);
  }

  pc_ = rec.next_pc;
  ++retired_count_;
  return rec;
}

u64 Vm::run(u64 max_insns) {
  u64 executed = 0;
  while (executed < max_insns && status_ == Status::kRunning) {
    step();
    ++executed;
  }
  return executed;
}

}  // namespace restore::vm
