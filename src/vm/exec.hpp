// Shared execution semantics for SRA-64 integer, branch, and address
// operations. Both the architectural VM and the out-of-order core's execute
// stage call these, so the two simulators agree on semantics by construction.
#pragma once

#include "common/types.hpp"
#include "isa/exception.hpp"
#include "isa/instruction.hpp"

namespace restore::vm {

struct ExecResult {
  u64 value = 0;
  isa::ExceptionKind fault = isa::ExceptionKind::kNone;
  bool ok() const noexcept { return fault == isa::ExceptionKind::kNone; }
};

// Evaluate a non-memory, non-control integer op (R-type and I-type, including
// the trapping ADDV/SUBV/MULV). `rs1`/`rs2` are source register values; the
// immediate is taken from `inst` where the format requires it.
ExecResult exec_int_op(const isa::DecodedInst& inst, u64 rs1, u64 rs2) noexcept;

// Conditional branch outcome.
bool eval_branch(isa::Opcode op, u64 rs1, u64 rs2) noexcept;

// Effective address of a load/store.
u64 effective_address(const isa::DecodedInst& inst, u64 rs1) noexcept;

// JALR target (word-aligned).
u64 jalr_target(const isa::DecodedInst& inst, u64 rs1) noexcept;

// Sign-extend a loaded value according to the load opcode (LB/LH/LW sign;
// LBU/LHU/LWU/LD zero/full).
u64 extend_load(isa::Opcode op, u64 raw) noexcept;

}  // namespace restore::vm
