#include "vm/exec.hpp"

#include "common/bits.hpp"

namespace restore::vm {

using isa::DecodedInst;
using isa::ExceptionKind;
using isa::Opcode;

namespace {

bool add_overflows(i64 a, i64 b) noexcept {
  i64 out;
  return __builtin_add_overflow(a, b, &out);
}

bool sub_overflows(i64 a, i64 b) noexcept {
  i64 out;
  return __builtin_sub_overflow(a, b, &out);
}

bool mul_overflows(i64 a, i64 b) noexcept {
  i64 out;
  return __builtin_mul_overflow(a, b, &out);
}

}  // namespace

ExecResult exec_int_op(const DecodedInst& inst, u64 rs1, u64 rs2) noexcept {
  ExecResult r;
  const bool is_imm = isa::format_of(inst.op) == isa::Format::kIType;
  const u64 b = is_imm ? static_cast<u64>(inst.imm) : rs2;
  const i64 sa = static_cast<i64>(rs1);
  const i64 sb = static_cast<i64>(b);

  switch (inst.op) {
    case Opcode::kAdd: case Opcode::kAddi: r.value = rs1 + b; break;
    case Opcode::kSub: r.value = rs1 - b; break;
    case Opcode::kMul: r.value = rs1 * b; break;
    case Opcode::kDivu:
      if (b == 0) r.fault = ExceptionKind::kDivByZero;
      else r.value = rs1 / b;
      break;
    case Opcode::kRemu:
      if (b == 0) r.fault = ExceptionKind::kDivByZero;
      else r.value = rs1 % b;
      break;
    case Opcode::kAnd: case Opcode::kAndi: r.value = rs1 & b; break;
    case Opcode::kOr: case Opcode::kOri: r.value = rs1 | b; break;
    case Opcode::kXor: case Opcode::kXori: r.value = rs1 ^ b; break;
    case Opcode::kSll: case Opcode::kSlli: r.value = rs1 << (b & 63); break;
    case Opcode::kSrl: case Opcode::kSrli: r.value = rs1 >> (b & 63); break;
    case Opcode::kSra: case Opcode::kSrai:
      r.value = static_cast<u64>(sa >> (b & 63));
      break;
    case Opcode::kSlt: case Opcode::kSlti: r.value = sa < sb ? 1 : 0; break;
    case Opcode::kSltu: case Opcode::kSltiu: r.value = rs1 < b ? 1 : 0; break;
    case Opcode::kSeq: case Opcode::kSeqi: r.value = rs1 == b ? 1 : 0; break;
    case Opcode::kAddw: case Opcode::kAddiw:
      r.value = static_cast<u64>(sign_extend(rs1 + b, 32));
      break;
    case Opcode::kSubw:
      r.value = static_cast<u64>(sign_extend(rs1 - b, 32));
      break;
    case Opcode::kMulw:
      r.value = static_cast<u64>(sign_extend(rs1 * b, 32));
      break;
    case Opcode::kAddv:
      if (add_overflows(sa, sb)) r.fault = ExceptionKind::kArithOverflow;
      else r.value = rs1 + b;
      break;
    case Opcode::kSubv:
      if (sub_overflows(sa, sb)) r.fault = ExceptionKind::kArithOverflow;
      else r.value = rs1 - b;
      break;
    case Opcode::kMulv:
      if (mul_overflows(sa, sb)) r.fault = ExceptionKind::kArithOverflow;
      else r.value = rs1 * b;
      break;
    case Opcode::kLdih:
      r.value = rs1 + (static_cast<u64>(inst.imm) << 16);
      break;
    default:
      // Not an integer op; callers must not reach here.
      r.fault = ExceptionKind::kIllegalInstruction;
      break;
  }
  return r;
}

bool eval_branch(Opcode op, u64 rs1, u64 rs2) noexcept {
  const i64 sa = static_cast<i64>(rs1);
  const i64 sb = static_cast<i64>(rs2);
  switch (op) {
    case Opcode::kBeq: return rs1 == rs2;
    case Opcode::kBne: return rs1 != rs2;
    case Opcode::kBlt: return sa < sb;
    case Opcode::kBge: return sa >= sb;
    case Opcode::kBltu: return rs1 < rs2;
    case Opcode::kBgeu: return rs1 >= rs2;
    default: return false;
  }
}

u64 effective_address(const DecodedInst& inst, u64 rs1) noexcept {
  return rs1 + static_cast<u64>(inst.imm);
}

u64 jalr_target(const DecodedInst& inst, u64 rs1) noexcept {
  return (rs1 + static_cast<u64>(inst.imm)) & ~u64{3};
}

u64 extend_load(Opcode op, u64 raw) noexcept {
  switch (op) {
    case Opcode::kLb: return static_cast<u64>(sign_extend(raw, 8));
    case Opcode::kLh: return static_cast<u64>(sign_extend(raw, 16));
    case Opcode::kLw: return static_cast<u64>(sign_extend(raw, 32));
    default: return raw;  // LBU/LHU/LWU/LD already zero-extended
  }
}

}  // namespace restore::vm
