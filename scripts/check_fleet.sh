#!/usr/bin/env bash
# End-to-end smoke of the multi-node campaign fleet.
#
# Usage: scripts/check_fleet.sh [build-dir]   (default: build)
#
# Proves the fleet acceptance contract on a tiny campaign:
#   1. coordinator + two live workers + one dead node address: the dead node
#      is quarantined (coordinator exit 3, quarantine recorded in the
#      manifest) while the live pair completes the campaign;
#   2. one live worker is SIGKILLed mid-campaign: its unfinished shards are
#      re-leased to the survivor;
#   3. under all of that, the merged trace is byte-identical to the direct
#      single-machine batch run;
#   4. campaign_status surfaces the node quarantine and exits 3.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}

WORK=$(mktemp -d)
W1=
W2=
COORD=
cleanup() {
  for pid in "$COORD" "$W1" "$W2"; do
    [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

SEED=53
TRIALS=16
SHARD_TRIALS=4
DEAD=127.0.0.1:9  # discard port: nobody listens, every connect faults

echo "== reference: direct batch run =="
"$BUILD_DIR/bench/fig2_vm_injection" \
  --seed "$SEED" --trials "$TRIALS" --shard-trials "$SHARD_TRIALS" \
  --workers 2 --out-jsonl "$WORK/direct.jsonl" >/dev/null

echo "== fleet: two live workers on ephemeral ports + one dead address =="
"$BUILD_DIR/tools/restored" --fleet-worker --listen 127.0.0.1:0 \
  --spool "$WORK/w1" 2>"$WORK/w1.log" &
W1=$!
"$BUILD_DIR/tools/restored" --fleet-worker --listen 127.0.0.1:0 \
  --spool "$WORK/w2" 2>"$WORK/w2.log" &
W2=$!

address_of() {
  local log=$1 addr=
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$log" | head -1)
    [[ -n "$addr" ]] && { echo "$addr"; return 0; }
    sleep 0.1
  done
  echo "check_fleet: worker never logged its address ($log)" >&2
  return 1
}
ADDR1=$(address_of "$WORK/w1.log")
ADDR2=$(address_of "$WORK/w2.log")

"$BUILD_DIR/tools/restore-fleet" --nodes "$ADDR1,$ADDR2,$DEAD" \
  --kind vm --seed "$SEED" --trials "$TRIALS" --shard-trials "$SHARD_TRIALS" \
  --node-faults-max 1 --connect-timeout-ms 500 --node-retries 0 \
  --out "$WORK/fleet.jsonl" >"$WORK/coord.out" 2>"$WORK/coord.log" &
COORD=$!

# SIGKILL the second worker as soon as the first shard commits: whatever it
# was holding must be re-leased to the survivor.
for _ in $(seq 1 300); do
  grep -q "committed" "$WORK/coord.log" 2>/dev/null && break
  sleep 0.05
done
kill -9 "$W2" 2>/dev/null || true
W2=

COORD_EXIT=0
wait "$COORD" || COORD_EXIT=$?
COORD=
cat "$WORK/coord.out"

# A benched node is not a healthy campaign: the dead address (and usually
# the killed worker too) must push the exit code to 3 even though the
# merged trace is complete.
if [[ "$COORD_EXIT" -ne 3 ]]; then
  echo "check_fleet: coordinator exited $COORD_EXIT (want 3: node quarantine)" >&2
  sed 's/^/  coord: /' "$WORK/coord.log" >&2
  exit 1
fi
grep -q "node $DEAD quarantined" "$WORK/coord.log" || {
  echo "check_fleet: coordinator log missing the dead-node quarantine" >&2
  sed 's/^/  coord: /' "$WORK/coord.log" >&2
  exit 1
}

echo "== trace byte-identity (fleet vs direct) =="
cmp "$WORK/direct.jsonl" "$WORK/fleet.jsonl"
echo "identical ($(wc -c <"$WORK/direct.jsonl") bytes)"

echo "== campaign_status must surface the node quarantine and exit 3 =="
STATUS_EXIT=0
"$BUILD_DIR/tools/campaign_status" "$WORK/fleet.jsonl" \
  | tee "$WORK/status.out" || STATUS_EXIT=$?
if [[ "$STATUS_EXIT" -ne 3 ]]; then
  echo "check_fleet: campaign_status exited $STATUS_EXIT (want 3)" >&2
  exit 1
fi
grep -q "quarantined fleet nodes" "$WORK/status.out" || {
  echo "check_fleet: campaign_status output missing the node quarantine" >&2
  exit 1
}

echo "check_fleet: OK"
