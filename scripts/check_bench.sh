#!/usr/bin/env bash
# Perf-trajectory gate: regenerate the BENCH_*.json family with the built
# sim_microbench and compare every covered metric against the committed
# baselines in bench/.
#
# Usage: scripts/check_bench.sh [build-dir] [tolerance-pct]
#   build-dir      default: build (must contain bench/sim_microbench)
#   tolerance-pct  default: 15 — how far a metric may regress before failing.
#
# Direction is inferred from the metric name: *_per_sec and *speedup* are
# higher-better and gate hard; *_ns metrics are lower-better but advisory
# (single-operation medians swing with scheduler noise — the throughput
# metrics integrate the same costs over enough work to gate on). Everything
# else (seeds, trial counts, page counts) is identity metadata, not a gated
# metric. A schema_version mismatch is a hard error: regenerate and commit
# fresh baselines (see EXPERIMENTS.md) instead of comparing incompatible
# shapes.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
TOLERANCE=${2:-15}
BIN=$(readlink -f "$BUILD_DIR/bench/sim_microbench" 2>/dev/null || true)
if [[ -z $BIN || ! -x $BIN ]]; then
  echo "check_bench: $BUILD_DIR/bench/sim_microbench not built" \
       "(cmake --build $BUILD_DIR --target sim_microbench)" >&2
  exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== regenerating BENCH_*.json ($BIN)"
# The JSON reports are written before the google-benchmark suites; an
# unmatchable filter skips those so the gate only pays for the reports.
(cd "$workdir" && "$BIN" --benchmark_filter='^$')

echo "== comparing against committed baselines (tolerance ${TOLERANCE}%)"
status=0
python3 - "$workdir" "$TOLERANCE" <<'PY' || status=$?
import json, sys

workdir, tolerance = sys.argv[1], float(sys.argv[2]) / 100.0
REPORTS = ["BENCH_snapshot.json", "BENCH_uarch_inner.json", "BENCH_campaign.json",
           "BENCH_faultmodel.json", "BENCH_analytics.json"]
failures = []
warnings = []
checked = 0


def walk(path, base, fresh):
    """Yield (dotted-path, baseline-value, fresh-value) numeric leaf pairs."""
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in base:
            if key in fresh:
                yield from walk(f"{path}.{key}" if path else key, base[key], fresh[key])
    elif isinstance(base, list) and isinstance(fresh, list):
        for i, (b, f) in enumerate(zip(base, fresh)):
            # Per-workload records carry their name; use it for readable paths.
            tag = b.get("workload", str(i)) if isinstance(b, dict) else str(i)
            yield from walk(f"{path}[{tag}]", b, f)
    elif isinstance(base, (int, float)) and isinstance(fresh, (int, float)):
        yield path, float(base), float(fresh)


for name in REPORTS:
    try:
        with open(f"bench/{name}") as fh:
            base = json.load(fh)
    except OSError:
        failures.append(f"{name}: no committed baseline in bench/ — run "
                        f"sim_microbench and commit the result (EXPERIMENTS.md)")
        continue
    with open(f"{workdir}/{name}") as fh:
        fresh = json.load(fh)
    if base.get("schema_version") != fresh.get("schema_version"):
        failures.append(
            f"{name}: schema_version {base.get('schema_version')} (committed) != "
            f"{fresh.get('schema_version')} (binary); regenerate the baselines")
        continue
    for path, b, f in walk("", base, fresh):
        leaf = path.rsplit(".", 1)[-1]
        if leaf.endswith("_per_sec") or "speedup" in leaf:
            checked += 1
            if b > 0 and f < b * (1.0 - tolerance):
                failures.append(
                    f"{name}: {path} regressed: {b:g} -> {f:g} "
                    f"(allowed {tolerance * 100:.0f}%)")
        elif leaf.endswith("_ns"):
            # Single-operation nanosecond medians swing with scheduler noise
            # far past any workable tolerance, so they are advisory: loud in
            # the log, non-fatal. The throughput metrics above integrate the
            # same costs over enough work to gate on.
            checked += 1
            if b > 0 and f > max(b * (1.0 + 2.0 * tolerance), b + 250.0):
                warnings.append(f"{name}: {path} drifted: {b:g} -> {f:g}")

for warning in warnings:
    print(f"check_bench: warn {warning} (advisory)")
for failure in failures:
    print(f"check_bench: FAIL {failure}")
print(f"check_bench: {checked} metric(s) compared, {len(failures)} regression(s), "
      f"{len(warnings)} advisory drift(s)")
sys.exit(1 if failures else 0)
PY

if [[ $status -ne 0 ]]; then
  echo "check_bench: FAILED"
  exit 1
fi
echo "check_bench: OK"
