#!/usr/bin/env bash
# End-to-end smoke of the analytics layer (compact + query + parity).
#
# Usage: scripts/check_analytics.sh [build-dir]   (default: build)
#
# Proves the analytics acceptance contract on a tiny fixed-seed fig2 trace:
#   1. compaction is byte-deterministic: two compactions at different
#      --threads counts produce identical .cols files;
#   2. the columnar outcome breakdown equals the one campaign_status
#      computes from the source JSONL, row for row (both tools emit the
#      same JSON array, so the comparison is a structural diff);
#   3. the full report renders as valid JSON with the campaign's row count.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

SEED=7
TRIALS=24
SHARD_TRIALS=8

echo "== fixed-seed fig2 campaign =="
"$BUILD_DIR/bench/fig2_vm_injection" \
  --seed "$SEED" --trials "$TRIALS" --shard-trials "$SHARD_TRIALS" \
  --workers 2 --out-jsonl "$WORK/fig2.jsonl" >/dev/null

echo "== compaction byte-determinism (1 vs 8 threads) =="
"$BUILD_DIR/tools/restore-analyze" compact "$WORK/fig2.jsonl" \
  --out "$WORK/t1.cols" --threads 1 >/dev/null
"$BUILD_DIR/tools/restore-analyze" compact "$WORK/fig2.jsonl" \
  --out "$WORK/t8.cols" --threads 8 >/dev/null
cmp "$WORK/t1.cols" "$WORK/t8.cols"
echo "identical ($(wc -c <"$WORK/t1.cols") bytes)"

echo "== outcome parity: columnar query vs campaign_status over the JSONL =="
"$BUILD_DIR/tools/restore-analyze" query "$WORK/t1.cols" \
  --query outcomes --json >"$WORK/store.json"
"$BUILD_DIR/tools/campaign_status" "$WORK/fig2.jsonl" --json >"$WORK/status.json"
python3 - "$WORK/store.json" "$WORK/status.json" <<'PY'
import json, sys

store = json.load(open(sys.argv[1]))
status = json.load(open(sys.argv[2]))
breakdown = status["breakdown"]
if store != breakdown:
    print("check_analytics: breakdown mismatch", file=sys.stderr)
    print(f"  restore-analyze: {json.dumps(store)}", file=sys.stderr)
    print(f"  campaign_status: {json.dumps(breakdown)}", file=sys.stderr)
    sys.exit(1)
total = sum(row["count"] for row in store)
print(f"parity OK: {len(store)} breakdown row(s), {total} trial(s)")
PY

echo "== full report is valid JSON with the campaign's row count =="
"$BUILD_DIR/tools/restore-analyze" report "$WORK/t1.cols" --json \
  >"$WORK/report.json"
python3 - "$WORK/report.json" "$WORK/status.json" <<'PY'
import json, sys

report = json.load(open(sys.argv[1]))
status = json.load(open(sys.argv[2]))
trials = status["trials_done"]
if report["rows"] != trials:
    print(f"check_analytics: report rows {report['rows']} != "
          f"campaign trials {trials}", file=sys.stderr)
    sys.exit(1)
for key in ("outcomes", "avf", "by_pc", "by_opcode", "latency"):
    if not report.get(key):
        print(f"check_analytics: report section '{key}' is empty", file=sys.stderr)
        sys.exit(1)
print(f"report OK: {report['rows']} rows, kind {report['kind']}")
PY

echo "check_analytics: OK"
