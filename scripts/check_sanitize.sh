#!/usr/bin/env bash
# Build and run the test suite under a sanitizer.
#
# Usage: scripts/check_sanitize.sh [--mode address|thread] [ctest-args...]
#   --mode address (default)  AddressSanitizer + UndefinedBehaviorSanitizer
#   --mode thread             ThreadSanitizer (campaign/ThreadPool concurrency)
#   Remaining arguments are forwarded to ctest, e.g.
#     scripts/check_sanitize.sh -R CampaignReplay
#     scripts/check_sanitize.sh --mode thread -L tsan
#
# Uses a separate build tree per mode (build-sanitize/, build-tsan/) so the
# regular build stays untouched. Any sanitizer report fails the run
# (-fno-sanitize-recover=all).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=address
if [[ "${1:-}" == "--mode" ]]; then
  MODE=${2:?--mode needs an argument (address|thread)}
  shift 2
fi

case "$MODE" in
  address)
    BUILD_DIR=build-sanitize
    export ASAN_OPTIONS=detect_leaks=1:abort_on_error=1
    export UBSAN_OPTIONS=print_stacktrace=1
    ;;
  thread)
    BUILD_DIR=build-tsan
    export TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1
    ;;
  *)
    echo "check_sanitize: unknown mode '$MODE' (use address or thread)" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD_DIR" -S . -DRESTORE_SANITIZE="$MODE" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)" "$@"
