#!/usr/bin/env bash
# Build and run the test suite under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Usage: scripts/check_sanitize.sh [ctest-args...]
#   Extra arguments are forwarded to ctest, e.g.
#     scripts/check_sanitize.sh -R CampaignReplay
#
# Uses a separate build tree (build-sanitize/) so the regular build stays
# untouched. Any sanitizer report fails the run (-fno-sanitize-recover=all).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-sanitize
cmake -B "$BUILD_DIR" -S . -DRESTORE_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

export ASAN_OPTIONS=detect_leaks=1:abort_on_error=1
export UBSAN_OPTIONS=print_stacktrace=1

cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)" "$@"
