#!/usr/bin/env bash
# End-to-end smoke of the restored campaign service.
#
# Usage: scripts/check_service.sh [build-dir]   (default: build)
#
# Proves the service acceptance contract on a tiny campaign:
#   1. a job submitted through restored/restorectl produces a trace
#      byte-identical to the same campaign run directly by the batch CLI;
#   2. a duplicate submission is served from the spool (no second run);
#   3. SIGTERM drains the daemon cleanly (exit 0).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}

WORK=$(mktemp -d)
DAEMON=
cleanup() {
  [[ -n "$DAEMON" ]] && kill "$DAEMON" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SEED=41
TRIALS=16
SHARD_TRIALS=8
SOCKET="$WORK/restored.sock"
CTL=("$BUILD_DIR/tools/restorectl" --socket "$SOCKET")

echo "== reference: direct batch run =="
"$BUILD_DIR/bench/fig2_vm_injection" \
  --seed "$SEED" --trials "$TRIALS" --shard-trials "$SHARD_TRIALS" \
  --workers 2 --out-jsonl "$WORK/direct.jsonl" >/dev/null

echo "== daemon: submit the same campaign over the socket =="
"$BUILD_DIR/tools/restored" --socket "$SOCKET" --spool "$WORK/spool" \
  --workers 2 2>"$WORK/restored.log" &
DAEMON=$!
for _ in $(seq 1 100); do
  [[ -S "$SOCKET" ]] && break
  sleep 0.1
done
[[ -S "$SOCKET" ]] || { echo "check_service: daemon never bound $SOCKET" >&2; exit 1; }

"${CTL[@]}" ping

"${CTL[@]}" submit --kind vm --seed "$SEED" --trials "$TRIALS" \
  --shard-trials "$SHARD_TRIALS" --follow --fetch "$WORK/fetched.jsonl"

echo "== trace byte-identity (daemon vs direct) =="
cmp "$WORK/direct.jsonl" "$WORK/fetched.jsonl"
echo "identical ($(wc -c <"$WORK/direct.jsonl") bytes)"

echo "== duplicate submission must be a spool cache hit =="
"${CTL[@]}" submit --kind vm --seed "$SEED" --trials "$TRIALS" \
  --shard-trials "$SHARD_TRIALS" | tee "$WORK/dup.out"
grep -q "served from spool" "$WORK/dup.out" || {
  echo "check_service: duplicate submission was not served from the spool" >&2
  exit 1
}

"${CTL[@]}" list

echo "== aggregate campaign_status over direct + spool traces =="
"$BUILD_DIR/tools/campaign_status" "$WORK/direct.jsonl" "$WORK"/spool/vm-*.jsonl

echo "== SIGTERM drains cleanly =="
kill -TERM "$DAEMON"
DAEMON_EXIT=0
wait "$DAEMON" || DAEMON_EXIT=$?
DAEMON=
if [[ "$DAEMON_EXIT" -ne 0 ]]; then
  echo "check_service: daemon exited $DAEMON_EXIT after SIGTERM" >&2
  sed 's/^/  restored: /' "$WORK/restored.log" >&2
  exit 1
fi
grep -q "drain complete" "$WORK/restored.log" || {
  echo "check_service: daemon log missing drain confirmation" >&2
  exit 1
}

echo "check_service: OK"
