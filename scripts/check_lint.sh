#!/usr/bin/env bash
# Static-analysis gate: simlint (all seven rule families) + clang-tidy.
#
# Usage: scripts/check_lint.sh [build-dir] [--families LIST]
#   build-dir (default: build) supplies compile_commands.json; when it has not
#   been configured yet, simlint falls back to globbing the configured roots
#   and clang-tidy is skipped unless the database exists.
#   --families LIST  comma-separated simlint families to run (default: all of
#   DET,ITER,COV,ID,PERF,CONC,SCHEMA). The CI lint job runs everything; the
#   clang thread-safety job re-runs just CONC,SCHEMA next to the annotated
#   build so a schema or lock-discipline break fails the job that owns it.
#
# clang-tidy is optional tooling: it runs when present on PATH (CI installs
# it), and is skipped — loudly — when it is not, so the gate stays usable in
# minimal containers. simlint itself needs only Python 3.11+.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
FAMILIES=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --families)
      FAMILIES=${2:?--families needs a comma-separated list}
      shift 2
      ;;
    *)
      BUILD_DIR=$1
      shift
      ;;
  esac
done
fail=0

echo "== simlint self-test (negative fixtures)"
python3 tools/simlint/simlint.py --self-test || fail=1

if [[ -n "$FAMILIES" ]]; then
  echo "== simlint ($FAMILIES)"
  python3 tools/simlint/simlint.py -p "$BUILD_DIR" --families "$FAMILIES" || fail=1
else
  echo "== simlint (DET, ITER, COV, ID, PERF, CONC, SCHEMA)"
  python3 tools/simlint/simlint.py -p "$BUILD_DIR" || fail=1
fi

echo "== clang-tidy"
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy: not installed; skipping (install clang-tidy to enable)"
elif [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "clang-tidy: no $BUILD_DIR/compile_commands.json; configure first (cmake -B $BUILD_DIR -S .)"
else
  # Checks and options come from .clang-tidy at the repo root.
  mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
  clang-tidy -p "$BUILD_DIR" --quiet --warnings-as-errors='*' "${tidy_sources[@]}" || fail=1
fi

if [[ $fail -ne 0 ]]; then
  echo "check_lint: FAILED"
  exit 1
fi
echo "check_lint: OK"
