#!/usr/bin/env bash
# Static-analysis gate: simlint (all five rule families) + clang-tidy.
#
# Usage: scripts/check_lint.sh [build-dir]
#   build-dir (default: build) supplies compile_commands.json; when it has not
#   been configured yet, simlint falls back to globbing the configured roots
#   and clang-tidy is skipped unless the database exists.
#
# clang-tidy is optional tooling: it runs when present on PATH (CI installs
# it), and is skipped — loudly — when it is not, so the gate stays usable in
# minimal containers. simlint itself needs only Python 3.11+.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
fail=0

echo "== simlint self-test (negative fixtures)"
python3 tools/simlint/simlint.py --self-test || fail=1

echo "== simlint (DET, ITER, COV, ID, PERF)"
python3 tools/simlint/simlint.py -p "$BUILD_DIR" || fail=1

echo "== clang-tidy"
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy: not installed; skipping (install clang-tidy to enable)"
elif [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "clang-tidy: no $BUILD_DIR/compile_commands.json; configure first (cmake -B $BUILD_DIR -S .)"
else
  # Checks and options come from .clang-tidy at the repo root.
  mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
  clang-tidy -p "$BUILD_DIR" --quiet --warnings-as-errors='*' "${tidy_sources[@]}" || fail=1
fi

if [[ $fail -ne 0 ]]; then
  echo "check_lint: FAILED"
  exit 1
fi
echo "check_lint: OK"
